package server

// The server's observability wiring over internal/obs. Collection is
// always on — counters and gauges are one atomic op and the latency
// trackers buffer into preallocated rings, so instrumentation rides
// every request without regressing the zero-allocation gates (see
// TestCachedQueryHitAllocs, which measures through this middleware).
// Config.Metrics gates only the two exposition endpoints:
//
//	GET /metrics   Prometheus text exposition — counters, gauges, and
//	               latency/size summaries at quantiles 0.5/0.9/0.99,
//	               each summary served by one of this repo's own DADO
//	               histograms (the HistogramTools dogfood).
//	GET /v1/stats  the same state as structured JSON
//	               (wire.StatsResponse) for clients and histcli -stats.

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"dynahist/internal/obs"
	"dynahist/internal/wire"
)

// endpointMetrics is one route's instrument set, resolved once at
// mount time so a request never pays a registry lookup.
type endpointMetrics struct {
	requests *obs.Counter
	inFlight *obs.Gauge
	latency  *obs.Tracker
	// status counts responses by class; index is status/100 (1..5).
	status [6]*obs.Counter
}

// serverMetrics holds every metric handle the serving paths touch,
// plus the obs registry that renders them.
type serverMetrics struct {
	obs   *obs.Registry
	start time.Time

	// Query cache (tuning.go): the ROADMAP's "hit ratio surfaced via a
	// stats endpoint" gap.
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheStalePuts *obs.Counter
	cacheEvictions *obs.Counter

	// Anti-entropy (peers.go).
	aeRounds        *obs.Counter
	aeAdopted       *obs.Counter
	aeReplicated    *obs.Counter
	aeSkipped       *obs.Counter
	aeFallbackPulls *obs.Counter
	peerFailures    map[string]*obs.Counter
	peerBackoffMS   map[string]*obs.Gauge

	// Self-tuning feedback (tuning.go).
	feedbackApplied *obs.Counter
	feedbackClamped *obs.Counter

	// Ingest batch-size distribution (server.go handleUpdate).
	ingestBatch *obs.Tracker

	// Per-endpoint HTTP metrics, keyed by the short route name the
	// instrument middleware mounts under.
	epMu      sync.Mutex
	endpoints map[string]*endpointMetrics
}

// newServerMetrics registers the full metric inventory. Called from
// New after the WAL (if any) is open and before routes are mounted, so
// function-backed metrics can capture their sources directly.
func newServerMetrics(s *Server) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		obs:   r,
		start: time.Now(),

		cacheHits:      r.Counter("dynahist_query_cache_hits_total", "Query responses served from the epoch-keyed cache."),
		cacheMisses:    r.Counter("dynahist_query_cache_misses_total", "Query responses evaluated because no cached response matched."),
		cacheStalePuts: r.Counter("dynahist_query_cache_stale_puts_total", "Cache stores dropped because a write landed while the response was being computed."),
		cacheEvictions: r.Counter("dynahist_query_cache_evictions_total", "Cached responses invalidated by an epoch advance."),

		aeRounds:        r.Counter("dynahist_antientropy_rounds_total", "Anti-entropy sync rounds attempted (one per peer per pass)."),
		aeAdopted:       r.Counter("dynahist_antientropy_adopted_total", "Own-site entries adopted from a peer replica (the rejoin path)."),
		aeReplicated:    r.Counter("dynahist_antientropy_replicated_total", "Other-site replicas stored or refreshed."),
		aeSkipped:       r.Counter("dynahist_antientropy_skipped_total", "Catalog rows skipped because local coverage was already current."),
		aeFallbackPulls: r.Counter("dynahist_antientropy_fallback_pulls_total", "Rows pulled via the per-entry endpoint after an incomplete batch fetch."),

		feedbackApplied: r.Counter("dynahist_feedback_applied_total", "Feedback records journaled by the self-tuning loop."),
		feedbackClamped: r.Counter("dynahist_feedback_clamped_total", "Feedback records whose bounded adjustment left a residual above 1% of the observed count."),

		ingestBatch: r.Tracker("dynahist_ingest_batch_values", "Values per ingest batch."),

		endpoints: make(map[string]*endpointMetrics),
	}
	r.GaugeFunc("dynahist_histograms", "Histograms currently registered.", func() float64 {
		return float64(s.reg.Len())
	})
	r.GaugeFunc("dynahist_uptime_seconds", "Seconds since the server was built.", func() float64 {
		return time.Since(m.start).Seconds()
	})
	r.GaugeFunc("dynahist_query_cache_hit_ratio", "Cache hits over cache lookups; 0 before any lookup.", func() float64 {
		return m.cacheHitRatio()
	})
	if s.wal != nil {
		w := s.wal
		r.CounterFunc("dynahist_wal_appends_total", "WAL records appended (the last assigned LSN).", w.LastLSN)
		r.CounterFunc("dynahist_wal_fsyncs_total", "Successful WAL data fsyncs.", w.Fsyncs)
		r.CounterFunc("dynahist_wal_rotations_total", "WAL segment rotations.", w.Rotations)
		r.GaugeFunc("dynahist_wal_digested_lsn", "WAL position folded into the in-memory histograms.", func() float64 {
			return float64(w.DigestedLSN())
		})
		r.GaugeFunc("dynahist_wal_digest_lag", "Records appended but not yet digested (appended LSN minus digested LSN).", func() float64 {
			return float64(w.LastLSN() - w.DigestedLSN())
		})
	}
	if len(s.cfg.Peers) > 0 {
		m.peerFailures = make(map[string]*obs.Counter, len(s.cfg.Peers))
		m.peerBackoffMS = make(map[string]*obs.Gauge, len(s.cfg.Peers))
		for _, p := range s.cfg.Peers {
			m.peerFailures[p] = r.Counter(
				fmt.Sprintf("dynahist_antientropy_peer_failures_total{peer=%q}", p),
				"Failed sync rounds, by peer.")
			m.peerBackoffMS[p] = r.Gauge(
				fmt.Sprintf("dynahist_antientropy_peer_backoff_ms{peer=%q}", p),
				"Current backoff delay before the peer is retried, in milliseconds (0 when healthy).")
		}
	}
	return m
}

func (m *serverMetrics) cacheHitRatio() float64 {
	hits := m.cacheHits.Value()
	total := hits + m.cacheMisses.Value()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// endpoint resolves (or creates) one route's instrument set.
func (m *serverMetrics) endpoint(name string) *endpointMetrics {
	m.epMu.Lock()
	defer m.epMu.Unlock()
	if em, ok := m.endpoints[name]; ok {
		return em
	}
	em := &endpointMetrics{
		requests: m.obs.Counter(
			fmt.Sprintf("dynahist_http_requests_total{endpoint=%q}", name),
			"HTTP requests received, by endpoint."),
		inFlight: m.obs.Gauge(
			fmt.Sprintf("dynahist_http_in_flight{endpoint=%q}", name),
			"HTTP requests currently being handled, by endpoint."),
		// Latencies are observed in seconds but tracked at microsecond
		// resolution: the dynamic histograms resolve at unit granularity,
		// so unscaled sub-second values would all share one bucket.
		latency: m.obs.ScaledTracker(
			fmt.Sprintf("dynahist_http_request_seconds{endpoint=%q}", name),
			"HTTP request latency in seconds, by endpoint.", 1e6),
	}
	for class := 1; class <= 5; class++ {
		em.status[class] = m.obs.Counter(
			fmt.Sprintf("dynahist_http_responses_total{endpoint=%q,class=\"%dxx\"}", name, class),
			"HTTP responses sent, by endpoint and status class.")
	}
	m.endpoints[name] = em
	return em
}

// statusWriter captures the response status code for the status-class
// counters. Pooled so the hot path never allocates one; a handler that
// never calls WriteHeader implicitly answered 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

var swPool = sync.Pool{New: func() any { return new(statusWriter) }}

// instrument wraps one route with the per-endpoint HTTP metrics:
// request count, in-flight gauge, latency tracker, status-class
// counter. The metric handles are resolved once here, at mount time;
// per request the overhead is four atomic ops, a pooled status writer,
// and one buffered latency observation — nothing that allocates.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.metrics.endpoint(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		em.requests.Inc()
		em.inFlight.Add(1)
		sw := swPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.status = w, http.StatusOK
		start := time.Now()
		h(sw, r)
		em.latency.Observe(time.Since(start).Seconds())
		em.inFlight.Add(-1)
		if class := sw.status / 100; class >= 1 && class <= 5 {
			em.status[class].Inc()
		}
		sw.ResponseWriter = nil
		swPool.Put(sw)
	}
}

// handleMetrics serves GET /metrics in Prometheus text exposition
// format. Mounted only when Config.Metrics is set.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.obs.WritePrometheus(w); err != nil {
		s.log.Printf("metrics: writing exposition: %v", err)
	}
}

// handleStats serves GET /v1/stats: the operator-facing structured
// snapshot of the same state /metrics exposes. Mounted only when
// Config.Metrics is set.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	resp := wire.StatsResponse{
		SiteID:        s.cfg.SiteID,
		UptimeSeconds: time.Since(m.start).Seconds(),
		Histograms:    s.reg.Len(),
		Endpoints:     make(map[string]wire.EndpointStats, len(m.endpoints)),
		Cache: wire.CacheStats{
			Hits:      m.cacheHits.Value(),
			Misses:    m.cacheMisses.Value(),
			StalePuts: m.cacheStalePuts.Value(),
			Evictions: m.cacheEvictions.Value(),
			HitRatio:  m.cacheHitRatio(),
		},
		AntiEntropy: wire.AntiEntropyStats{
			Rounds:        m.aeRounds.Value(),
			Adopted:       m.aeAdopted.Value(),
			Replicated:    m.aeReplicated.Value(),
			Skipped:       m.aeSkipped.Value(),
			FallbackPulls: m.aeFallbackPulls.Value(),
		},
		Tuning: wire.TuningStats{
			Enabled: s.cfg.Tuning.Enabled,
			Applied: m.feedbackApplied.Value(),
			Clamped: m.feedbackClamped.Value(),
		},
	}
	bq := m.ingestBatch.Quantiles(obs.TrackerQuantiles[0], obs.TrackerQuantiles[1], obs.TrackerQuantiles[2])
	resp.Ingest = wire.IngestStats{
		Batches:  m.ingestBatch.Count(),
		Values:   m.ingestBatch.Sum(),
		BatchP50: bq[0],
		BatchP90: bq[1],
		BatchP99: bq[2],
	}
	if s.wal != nil {
		appended, digested := s.wal.LastLSN(), s.wal.DigestedLSN()
		resp.WAL = wire.WALStats{
			Enabled:     true,
			AppendedLSN: appended,
			DigestedLSN: digested,
			DigestLag:   appended - digested,
			Fsyncs:      s.wal.Fsyncs(),
			Rotations:   s.wal.Rotations(),
		}
	}
	for _, p := range s.cfg.Peers {
		resp.AntiEntropy.Peers = append(resp.AntiEntropy.Peers, wire.PeerSyncStats{
			Peer:           p,
			Failures:       m.peerFailures[p].Value(),
			BackoffSeconds: float64(m.peerBackoffMS[p].Value()) / 1000,
		})
	}
	m.epMu.Lock()
	for name, em := range m.endpoints {
		lq := em.latency.Quantiles(obs.TrackerQuantiles[0], obs.TrackerQuantiles[1], obs.TrackerQuantiles[2])
		st := wire.EndpointStats{
			Requests:   em.requests.Value(),
			InFlight:   em.inFlight.Value(),
			LatencyP50: lq[0],
			LatencyP90: lq[1],
			LatencyP99: lq[2],
		}
		for class := 1; class <= 5; class++ {
			if v := em.status[class].Value(); v > 0 {
				if st.Status == nil {
					st.Status = make(map[string]uint64, 2)
				}
				st.Status[fmt.Sprintf("%dxx", class)] = v
			}
		}
		resp.Endpoints[name] = st
	}
	m.epMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}
