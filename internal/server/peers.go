package server

// Multi-node serving: the peer role. The paper's §8 superposition
// result makes a histogram a mergeable unit — any site's histogram
// unions losslessly into a global one — so scaling out needs no data
// movement at all, only snapshot envelopes. This file implements the
// server side of that contract:
//
//   - GET /v1/h/{name}/envelope serves the local histogram as one
//     self-describing snapshot envelope (the scatter-gather read unit;
//     client.Fanout superposes one envelope per site into a global
//     answer).
//   - GET /v1/sites/catalog and /v1/sites/entry serve the anti-entropy
//     protocol: the catalog lists every (site, name, watermark) this
//     node can hand out — its own histograms plus replicas it holds —
//     and the entry endpoint returns the corresponding catalog-entry
//     blob. GET /v1/sites/entries is the batch form: many blobs of one
//     site in one framed body, so a catalog pull that finds N stale
//     rows costs one round trip per site, not N.
//   - antiEntropyLoop pulls each peer's catalog on a timer (per-peer
//     timeout, exponential backoff on failures), stores fresher
//     replicas of other sites' histograms, and adopts a peer's replica
//     of *this* site when it is ahead of local state — which is how a
//     node that lost its disks catches up from a survivor without
//     re-ingesting a single raw value.
//
// Watermarks in the protocol are per entry: every catalog row carries
// the covered watermark of that histogram (its siteWM, stamped at the
// entry's last mutation), not the node's global counter. That is what
// makes adoption converge row by row — a rejoining node with N
// histograms pulls all N, each gated on its own entry's coverage — and
// what keeps steady-state cheap: a histogram nobody wrote to advertises
// an unchanged watermark, so peers re-pull only what actually moved.
// The node-wide watermark still exists (catalog header field) as the
// deletion authority for pruning and as the monotone source new stamps
// are drawn from.
//
// Consistency caveats: replicas are asynchronous snapshots, so a
// replica is bounded-stale by the anti-entropy period; the watermark
// comparison guarantees a node never adopts data older than what the
// entry's own coverage claims, but concurrent ingest racing an adoption
// (only possible when a peer's replica is genuinely ahead of local
// state, i.e. during rejoin) may be superseded by the adopted snapshot.
// On servers without a WAL the watermark/snapshot pairing is advisory
// in one direction only — see the contract note on (*Server).watermark.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"time"

	"dynahist/internal/wire"
)

// replica is one held copy of another site's histogram: the catalog
// entry blob (EncodeEntry format: identity + configuration + snapshot
// envelope) and the origin's covered watermark.
type replica struct {
	data      []byte
	watermark uint64
	total     float64
}

// handleEnvelope serves GET /v1/h/{name}/envelope: the local
// histogram's self-describing snapshot envelope, with the site ID,
// covered watermark and total in response headers. This is the
// scatter-gather read unit — a few kilobytes summarising the site's
// whole slice, shipped instead of the data.
func (s *Server) handleEnvelope(w http.ResponseWriter, r *http.Request) {
	e, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeErr(w, statusOf(err), "%v", err)
		return
	}
	// Pair the snapshot with the entry's covered watermark: with a WAL
	// the digester is frozen between records while both are taken; the
	// stamp is read before the snapshot, so without one the snapshot can
	// only contain more than the watermark claims, never less.
	if s.wal != nil {
		s.digestMu.Lock()
	}
	wm := e.siteWM.Load()
	total := e.h.Total()
	blob, err := e.h.Snapshot()
	if s.wal != nil {
		s.digestMu.Unlock()
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", wire.EnvelopeContentType)
	h.Set(wire.HeaderSite, s.cfg.SiteID)
	h.Set(wire.HeaderWatermark, strconv.FormatUint(wm, 10))
	h.Set(wire.HeaderTotal, strconv.FormatFloat(total, 'g', -1, 64))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

// handleSiteCatalog serves GET /v1/sites/catalog: everything this node
// can hand to a peer — its own histograms under its site ID, each at
// its entry's covered watermark, plus every replica it holds — sorted
// for stable output. The response-level Watermark is the node-wide
// counter; peers use it only as the pruning authority (a deletion bumps
// it past every replica of the deleted histogram).
func (s *Server) handleSiteCatalog(w http.ResponseWriter, r *http.Request) {
	resp := wire.SiteCatalogResponse{SiteID: s.cfg.SiteID, Watermark: s.watermark(), Peers: s.cfg.Peers, Entries: []wire.SiteEntry{}}
	for _, e := range s.reg.entries() {
		resp.Entries = append(resp.Entries, wire.SiteEntry{
			Site: s.cfg.SiteID, Name: e.name, Watermark: e.siteWM.Load(), Total: e.h.Total(),
		})
	}
	s.replMu.RLock()
	for site, byName := range s.replicas {
		for name, rep := range byName {
			resp.Entries = append(resp.Entries, wire.SiteEntry{
				Site: site, Name: name, Watermark: rep.watermark, Total: rep.total,
			})
		}
	}
	s.replMu.RUnlock()
	sort.Slice(resp.Entries, func(i, j int) bool {
		a, b := resp.Entries[i], resp.Entries[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Name < b.Name
	})
	writeJSON(w, http.StatusOK, resp)
}

// handleSiteEntry serves GET /v1/sites/entry?site=S&name=N: the
// catalog-entry blob for one (site, histogram) pair — encoded fresh for
// the local site, served from the replica store otherwise.
func (s *Server) handleSiteEntry(w http.ResponseWriter, r *http.Request) {
	site := r.URL.Query().Get("site")
	name := r.URL.Query().Get("name")
	if !ValidName(name) {
		writeErr(w, http.StatusBadRequest, "invalid name %q", name)
		return
	}
	var (
		data  []byte
		wm    uint64
		total float64
	)
	if site != "" && site == s.cfg.SiteID {
		e, err := s.reg.get(name)
		if err != nil {
			writeErr(w, statusOf(err), "%v", err)
			return
		}
		if s.wal != nil {
			s.digestMu.Lock()
		}
		wm = e.siteWM.Load()
		total = e.h.Total()
		// The covered-LSN field is local to this node's WAL sequence and
		// meaningless to the peer (who overwrites it on adoption); only
		// the site watermark travels.
		data, err = EncodeEntry(e, 0, wm)
		if s.wal != nil {
			s.digestMu.Unlock()
		}
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "encoding entry: %v", err)
			return
		}
	} else {
		s.replMu.RLock()
		rep, ok := s.replicas[site][name]
		s.replMu.RUnlock()
		if !ok {
			writeErr(w, http.StatusNotFound, "no entry for site %q name %q", site, name)
			return
		}
		data, wm, total = rep.data, rep.watermark, rep.total
	}
	h := w.Header()
	h.Set("Content-Type", wire.SiteEntryContentType)
	h.Set(wire.HeaderSite, site)
	h.Set(wire.HeaderWatermark, strconv.FormatUint(wm, 10))
	h.Set(wire.HeaderTotal, strconv.FormatFloat(total, 'g', -1, 64))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// maxSiteEntriesBatch bounds how many names one batch request may ask
// for.
const maxSiteEntriesBatch = 256

// handleSiteEntries serves GET /v1/sites/entries?site=S&name=N1&name=N2…:
// the batch form of /v1/sites/entry — many catalog-entry blobs of one
// site in one framed body. Names the node cannot serve are simply
// absent from the response; the puller falls back to the per-entry
// endpoint for them or retries next round.
func (s *Server) handleSiteEntries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	site := q.Get("site")
	names := q["name"]
	if len(names) == 0 {
		writeErr(w, http.StatusBadRequest, "no names requested")
		return
	}
	if len(names) > maxSiteEntriesBatch {
		writeErr(w, http.StatusBadRequest, "%d names requested, limit %d", len(names), maxSiteEntriesBatch)
		return
	}
	items := make([]wire.SiteEntryBlob, 0, len(names))
	if site != "" && site == s.cfg.SiteID {
		// Own-site entries encode fresh under one digest freeze, so the
		// whole batch is one consistent cut of the fold state.
		if s.wal != nil {
			s.digestMu.Lock()
		}
		for _, name := range names {
			if !ValidName(name) {
				continue
			}
			e, err := s.reg.get(name)
			if err != nil {
				continue
			}
			wm := e.siteWM.Load()
			data, err := EncodeEntry(e, 0, wm)
			if err != nil {
				s.log.Printf("site entries: encoding %q: %v", name, err)
				continue
			}
			items = append(items, wire.SiteEntryBlob{Name: name, Watermark: wm, Data: data})
		}
		if s.wal != nil {
			s.digestMu.Unlock()
		}
	} else {
		s.replMu.RLock()
		for _, name := range names {
			if rep, ok := s.replicas[site][name]; ok {
				items = append(items, wire.SiteEntryBlob{Name: name, Watermark: rep.watermark, Data: rep.data})
			}
		}
		s.replMu.RUnlock()
	}
	h := w.Header()
	h.Set("Content-Type", wire.SiteEntriesContentType)
	h.Set(wire.HeaderSite, site)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(wire.EncodeSiteEntries(items))
}

// peerState is the anti-entropy loop's per-peer failure bookkeeping.
type peerState struct {
	failures int
	nextTry  time.Time
}

// maxBackoffShift caps the exponential backoff at 2^5 = 32 sync
// periods.
const maxBackoffShift = 5

// antiEntropyLoop pulls every peer's catalog on a timer until Close. A
// peer that fails is retried with exponential backoff (1, 2, 4, …
// periods, capped) so a dead peer costs one timed-out request every
// few seconds, not every tick.
func (s *Server) antiEntropyLoop() {
	defer close(s.aeDone)
	state := make(map[string]*peerState, len(s.cfg.Peers))
	for _, p := range s.cfg.Peers {
		state[p] = &peerState{}
	}
	t := time.NewTicker(s.cfg.AntiEntropyEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			for _, peer := range s.cfg.Peers {
				st := state[peer]
				if now.Before(st.nextTry) {
					continue
				}
				if err := s.syncPeer(peer); err != nil {
					st.failures++
					shift := st.failures
					if shift > maxBackoffShift {
						shift = maxBackoffShift
					}
					st.nextTry = now.Add(s.cfg.AntiEntropyEvery << shift)
					s.metrics.peerFailures[peer].Inc()
					s.metrics.peerBackoffMS[peer].Set((s.cfg.AntiEntropyEvery << shift).Milliseconds())
					s.log.Printf("anti-entropy: peer %s: %v (retry in %v)",
						peer, err, s.cfg.AntiEntropyEvery<<shift)
				} else {
					st.failures = 0
					st.nextTry = time.Time{}
					s.metrics.peerBackoffMS[peer].Set(0)
				}
			}
		}
	}
}

// SyncPeersNow runs one synchronous anti-entropy round against every
// configured peer, bypassing the loop's backoff (tests and operators
// poking a node after a topology change). Rounds are serialised with
// the background loop's, so calling this on a live server is safe.
// Errors are collected per peer, not short-circuited.
func (s *Server) SyncPeersNow() []error {
	var errs []error
	for _, peer := range s.cfg.Peers {
		if err := s.syncPeer(peer); err != nil {
			errs = append(errs, fmt.Errorf("peer %s: %w", peer, err))
		}
	}
	return errs
}

// syncPeer pulls one peer's site catalog and reconciles: adopt own-site
// rows whose covered watermark is ahead of the local entry's (or whose
// entry is missing locally — the rejoin path), pull fresher replicas of
// other sites, prune replicas the origin itself has dropped. A failed
// row pull is logged and skipped — the next round retries it — while a
// failed catalog pull fails the whole sync (that is what the loop's
// backoff keys on). syncMu serialises rounds against each other, so
// adoption and watermark advancement never interleave between a loop
// tick and a SyncPeersNow caller.
func (s *Server) syncPeer(base string) error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.metrics.aeRounds.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.PeerTimeout)
	defer cancel()
	cat, err := s.fetchPeerCatalog(ctx, base)
	if err != nil {
		return err
	}
	// Rows under the peer's own site ID are authoritative for that
	// site's live histogram set; collect them so replicas of dropped
	// histograms can be pruned below.
	peerOwn := map[string]bool{}
	// The node-wide watermark is lifted only after the whole catalog is
	// reconciled: gating is per entry, and advancing mid-pass would make
	// concurrently-served catalog rows claim coverage the still-pending
	// adoptions don't have yet.
	var maxAdopted uint64
	// Pass 1: decide which rows need pulling — own-site rows ahead of
	// (or missing from) local state, other-site rows fresher than the
	// held replica — grouped by origin site so pass 2 can pull each
	// group in one batch request.
	needed := map[string][]wire.SiteEntry{}
	var sites []string
	for _, row := range cat.Entries {
		if row.Site == "" || !ValidName(row.Name) {
			continue
		}
		if row.Site == cat.SiteID {
			peerOwn[row.Name] = true
		}
		if row.Site == s.cfg.SiteID {
			// A peer claims a copy of one of our own histograms that is
			// ahead of that entry's local coverage — or a histogram we do
			// not hold at all: the rejoin path. Pull and adopt it.
			cur, err := s.reg.get(row.Name)
			if err == nil && row.Watermark <= cur.siteWM.Load() {
				s.metrics.aeSkipped.Inc()
				continue
			}
		} else {
			s.replMu.RLock()
			cur, ok := s.replicas[row.Site][row.Name]
			s.replMu.RUnlock()
			if ok && row.Watermark <= cur.watermark {
				s.metrics.aeSkipped.Inc()
				continue
			}
		}
		if len(needed[row.Site]) == 0 {
			sites = append(sites, row.Site)
		}
		needed[row.Site] = append(needed[row.Site], row)
	}
	sort.Strings(sites)
	// Pass 2: one batch fetch per site, with a per-entry fallback for
	// rows the batch did not return (a peer predating the batch
	// endpoint answers 404 and every row falls back). Fallbacks are
	// counted and reported once per round — a degraded batch path must
	// be visible in metrics and the log, but a hundred-row catalog must
	// not emit a hundred lines about it.
	var fallbackPulls, fallbackErrs int
	for _, site := range sites {
		rows := needed[site]
		blobs := s.fetchPeerEntries(base, site, rows)
		for _, row := range rows {
			data, wm := blobs[row.Name].Data, blobs[row.Name].Watermark
			if data == nil {
				fallbackPulls++
				var err error
				data, wm, err = s.fetchPeerEntry(base, row)
				if err != nil {
					fallbackErrs++
					continue
				}
			}
			if row.Site == s.cfg.SiteID {
				awm, err := s.adoptEntry(data, row, wm)
				if err != nil {
					s.log.Printf("anti-entropy: adopting %s/%s from %s: %v", row.Site, row.Name, base, err)
				} else if awm > maxAdopted {
					maxAdopted = awm
				}
			} else if err := s.storeReplica(data, row, wm); err != nil {
				s.log.Printf("anti-entropy: replicating %s/%s from %s: %v", row.Site, row.Name, base, err)
			}
		}
	}
	if fallbackPulls > 0 {
		s.metrics.aeFallbackPulls.Add(uint64(fallbackPulls))
		s.log.Printf("anti-entropy: %s: batch fetch incomplete, %d row(s) pulled individually (%d of those failed, retried next round)",
			base, fallbackPulls, fallbackErrs)
	}
	if maxAdopted > 0 {
		// Post-adoption ingest must stamp above every adopted watermark
		// (they are numbered in this site's pre-restart sequence).
		s.advanceWatermark(maxAdopted)
	}
	if cat.SiteID != "" && cat.SiteID != s.cfg.SiteID {
		s.pruneReplicas(cat.SiteID, cat.Watermark, peerOwn)
	}
	return nil
}

// adoptEntry installs a fetched replica of this site's histogram as
// local state — the catch-up step a rejoining node runs instead of
// re-ingesting raw data. It returns the adopted watermark (0 when the
// adoption was skipped) so the caller can lift the node-wide watermark
// once the whole catalog pass is done.
func (s *Server) adoptEntry(data []byte, row wire.SiteEntry, wm uint64) (uint64, error) {
	e, err := DecodeEntry(data)
	if err != nil {
		return 0, err
	}
	if e.name != row.Name {
		return 0, fmt.Errorf("entry blob holds %q, want %q", e.name, row.Name)
	}
	if s.wal != nil {
		s.digestMu.Lock()
		defer s.digestMu.Unlock()
		// Local WAL records at or below the current digested position
		// are superseded by the adopted snapshot; anything appended
		// after it still folds in on top.
		e.walLSN = s.wal.DigestedLSN()
	}
	// Re-check under the digest freeze: adoption must never replace an
	// entry whose own coverage caught up while the blob was in flight.
	if cur, err := s.reg.get(row.Name); err == nil {
		if wm <= cur.siteWM.Load() {
			return 0, nil
		}
		// Locally observed query feedback outlives the adoption: the
		// journal replays onto the adopted buckets like onto any fresh
		// view epoch.
		e.adoptTuning(cur)
	}
	e.siteWM.Store(wm)
	if err := s.reg.replace(e); err != nil {
		return 0, err
	}
	s.metrics.aeAdopted.Inc()
	s.log.Printf("anti-entropy: adopted %q at watermark %d (total %v)",
		e.name, wm, e.h.Total())
	return wm, nil
}

// storeReplica decode-checks and stores one fetched other-site catalog
// entry, so the replica store never re-serves garbage to peers.
func (s *Server) storeReplica(data []byte, row wire.SiteEntry, wm uint64) error {
	e, err := DecodeEntry(data)
	if err != nil {
		return err
	}
	if e.name != row.Name {
		return fmt.Errorf("entry blob holds %q, want %q", e.name, row.Name)
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	cur, ok := s.replicas[row.Site][row.Name]
	if ok && cur.watermark >= wm {
		return nil // a concurrent round already stored something fresher
	}
	if s.replicas[row.Site] == nil {
		s.replicas[row.Site] = make(map[string]replica)
	}
	s.replicas[row.Site][row.Name] = replica{data: data, watermark: wm, total: e.h.Total()}
	s.metrics.aeReplicated.Inc()
	return nil
}

// pruneReplicas drops held replicas of origin-site histograms the
// origin no longer lists — deletion propagates through the same pull
// the data does, with the origin's own catalog as the authority. The
// originWM guard distinguishes deletion from amnesia: a real deletion
// bumps the origin's watermark past every replica of the deleted
// histogram, while a node rebuilt on empty disks advertises an empty
// catalog at a LOWER watermark than the replicas — those must survive,
// they are exactly what the rejoining node is about to adopt back.
func (s *Server) pruneReplicas(site string, originWM uint64, live map[string]bool) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	for name, rep := range s.replicas[site] {
		if !live[name] && originWM >= rep.watermark {
			delete(s.replicas[site], name)
		}
	}
}

// fetchPeerCatalog GETs a peer's /v1/sites/catalog.
func (s *Server) fetchPeerCatalog(ctx context.Context, base string) (wire.SiteCatalogResponse, error) {
	var cat wire.SiteCatalogResponse
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/sites/catalog", nil)
	if err != nil {
		return cat, err
	}
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return cat, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return cat, fmt.Errorf("catalog: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return cat, err
	}
	if err := json.Unmarshal(data, &cat); err != nil {
		return cat, fmt.Errorf("catalog: %w", err)
	}
	return cat, nil
}

// fetchPeerEntry GETs one catalog-entry blob from a peer, returning the
// blob and the watermark it was served at (the header value, which is
// at least as fresh as the catalog row that prompted the pull).
func (s *Server) fetchPeerEntry(base string, row wire.SiteEntry) ([]byte, uint64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.PeerTimeout)
	defer cancel()
	u := base + "/v1/sites/entry?site=" + url.QueryEscape(row.Site) + "&name=" + url.QueryEscape(row.Name)
	req, err := http.NewRequestWithContext(ctx, "GET", u, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("entry %s/%s: status %d", row.Site, row.Name, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, 0, err
	}
	wm := row.Watermark
	if h := resp.Header.Get(wire.HeaderWatermark); h != "" {
		if v, err := strconv.ParseUint(h, 10, 64); err == nil {
			wm = v
		}
	}
	return data, wm, nil
}

// fetchPeerEntries pulls many of one site's catalog-entry blobs in a
// single batch request, returning them by name. Any failure — a peer
// predating the batch endpoint, a malformed body — degrades to an
// empty result and the caller falls back to per-entry fetches:
// batching is an optimisation, never a correctness dependency.
func (s *Server) fetchPeerEntries(base, site string, rows []wire.SiteEntry) map[string]wire.SiteEntryBlob {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.PeerTimeout)
	defer cancel()
	q := url.Values{}
	q.Set("site", site)
	for _, row := range rows {
		q.Add("name", row.Name)
	}
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/sites/entries?"+q.Encode(), nil)
	if err != nil {
		return nil
	}
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil
	}
	items, err := wire.DecodeSiteEntries(data)
	if err != nil {
		s.log.Printf("anti-entropy: batch entries from %s: %v", base, err)
		return nil
	}
	out := make(map[string]wire.SiteEntryBlob, len(items))
	for _, it := range items {
		out[it.Name] = it
	}
	return out
}
