package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"testing"

	"dynahist/internal/wire"
)

// queryJSON POSTs a batch query and decodes the response.
func queryJSON(t *testing.T, base, name string, req wire.QueryRequest, wantStatus int) wire.QueryResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	var resp wire.QueryResponse
	out := any(&resp)
	if wantStatus != http.StatusOK {
		out = nil
	}
	do(t, "POST", base+"/v1/h/"+name+"/query", "application/json", body, wantStatus, out)
	return resp
}

// TestQueryEndpoint exercises the mixed batch of the acceptance
// criteria — total + 10 quantiles + CDF points + ranges (+ PDF and
// buckets) in one round trip — and cross-checks every answer against
// the per-statistic GET endpoints.
func TestQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustCreate(t, ts.URL, "q", FamilyDADO, 1024, 4)
	vs := make([]float64, 5000)
	for i := range vs {
		vs[i] = float64(i % 1000)
	}
	mustInsertJSON(t, ts.URL, "q", vs)

	qs := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.9, 0.99}
	xs := []float64{100, 250, 500, 900}
	req := wire.QueryRequest{
		Quantiles: qs,
		CDF:       xs,
		PDF:       []float64{500},
		Ranges:    []wire.RangeQuery{{Lo: 100, Hi: 200}, {Lo: 0, Hi: 999}},
		Buckets:   true,
	}
	resp := queryJSON(t, ts.URL, "q", req, http.StatusOK)

	// The merged-union total carries float summation drift.
	if math.Abs(resp.Total-5000) > 1e-6 {
		t.Errorf("Total = %v, want 5000", resp.Total)
	}
	if len(resp.Quantiles) != len(qs) || len(resp.CDF) != len(xs) ||
		len(resp.PDF) != 1 || len(resp.Ranges) != 2 {
		t.Fatalf("answer counts = %d/%d/%d/%d, want %d/%d/1/2",
			len(resp.Quantiles), len(resp.CDF), len(resp.PDF), len(resp.Ranges), len(qs), len(xs))
	}
	if len(resp.Buckets) == 0 {
		t.Fatal("no buckets in response")
	}

	// Quantiles must be monotone and inside the domain.
	prev := math.Inf(-1)
	for i, v := range resp.Quantiles {
		if v < prev || v < 0 || v > 1000 {
			t.Errorf("quantile %v = %v: not monotone in-domain (prev %v)", qs[i], v, prev)
		}
		prev = v
	}

	// Every batched answer matches its single-statistic GET wrapper
	// (both run through the same pinned-view evaluation).
	for i, x := range xs {
		var single wire.CDFResponse
		do(t, "GET", fmt.Sprintf("%s/v1/h/q/cdf?x=%g", ts.URL, x), "", nil, http.StatusOK, &single)
		if single.CDF != resp.CDF[i] {
			t.Errorf("GET cdf(%v) = %v, batch = %v", x, single.CDF, resp.CDF[i])
		}
	}
	for i, q := range qs {
		var single wire.QuantileResponse
		do(t, "GET", fmt.Sprintf("%s/v1/h/q/quantile?q=%g", ts.URL, q), "", nil, http.StatusOK, &single)
		if single.Value != resp.Quantiles[i] {
			t.Errorf("GET quantile(%v) = %v, batch = %v", q, single.Value, resp.Quantiles[i])
		}
	}
	var rng wire.RangeResponse
	do(t, "GET", ts.URL+"/v1/h/q/range?lo=100&hi=200", "", nil, http.StatusOK, &rng)
	if rng.Count != resp.Ranges[0] {
		t.Errorf("GET range = %v, batch = %v", rng.Count, resp.Ranges[0])
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustCreate(t, ts.URL, "q", FamilyDC, 1024, 2)

	// Unknown histogram.
	queryJSON(t, ts.URL, "nope", wire.QueryRequest{}, http.StatusNotFound)
	// Quantile argument outside (0,1].
	queryJSON(t, ts.URL, "q", wire.QueryRequest{Quantiles: []float64{1.5}}, http.StatusBadRequest)
	queryJSON(t, ts.URL, "q", wire.QueryRequest{Quantiles: []float64{0}}, http.StatusBadRequest)
	// Quantile of an empty histogram.
	queryJSON(t, ts.URL, "q", wire.QueryRequest{Quantiles: []float64{0.5}}, http.StatusUnprocessableEntity)
	// Malformed body.
	do(t, "POST", ts.URL+"/v1/h/q/query", "application/json", []byte("{"), http.StatusBadRequest, nil)
	// Over the statistics cap.
	big := make([]float64, maxQueryStats+1)
	for i := range big {
		big[i] = 0.5
	}
	queryJSON(t, ts.URL, "q", wire.QueryRequest{Quantiles: big}, http.StatusBadRequest)
	// An empty histogram still answers the statistics that are total
	// functions.
	resp := queryJSON(t, ts.URL, "q", wire.QueryRequest{CDF: []float64{5}, Ranges: []wire.RangeQuery{{Lo: 0, Hi: 10}}}, http.StatusOK)
	if resp.Total != 0 || resp.CDF[0] != 0 || resp.Ranges[0] != 0 {
		t.Errorf("empty-histogram batch = %+v, want zeros", resp)
	}
}
