package server

// Durable-ingest tests: the server driven with a write-ahead log,
// including in-process crash recovery (a server abandoned without its
// final checkpoint), the checkpoint/digest overlap regression, torn
// tails, and injected disk faults on the live ingest path.

import (
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dynahist/internal/fsfault"
	"dynahist/internal/wal"
	"dynahist/internal/wire"
)

// walConfig returns a durable-ingest config over the two directories.
func walConfig(catDir, walDir string) Config {
	return Config{
		CatalogDir: catDir,
		WAL:        wal.Options{Dir: walDir, Sync: wal.SyncAlways},
	}
}

// newCrashableServer builds a server the caller will crash (or close)
// explicitly; only the HTTP front end is torn down automatically.
func newCrashableServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Logger = log.New(os.Stderr, t.Name()+": ", 0)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// crash abandons a server the way a kill does: the digest queue is
// released and file handles closed so the test process stays clean,
// but no final checkpoint is taken — on-disk state is exactly what the
// appends and any explicit checkpoints left behind.
func crash(s *Server) {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.loopDone
	if s.wal != nil {
		s.stopWAL()
		_ = s.wal.Close()
	}
}

// waitDigested blocks until the digester has folded every appended
// record.
func waitDigested(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.wal.DigestedLSN() < s.wal.LastLSN() {
		if time.Now().After(deadline) {
			t.Fatalf("digester stuck: digested %d < appended %d", s.wal.DigestedLSN(), s.wal.LastLSN())
		}
		time.Sleep(time.Millisecond)
	}
}

func getTotal(t *testing.T, base, name string) float64 {
	t.Helper()
	var resp wire.TotalResponse
	do(t, "GET", base+"/v1/h/"+name+"/total", "", nil, http.StatusOK, &resp)
	return resp.Total
}

func getWALStatus(t *testing.T, base string) wire.WALStatusResponse {
	t.Helper()
	var resp wire.WALStatusResponse
	do(t, "GET", base+"/v1/wal/status", "", nil, http.StatusOK, &resp)
	return resp
}

func mustInsertBinary(t *testing.T, base, name string, vs []float64) wire.UpdateResponse {
	t.Helper()
	body, err := wire.EncodeBatch(vs)
	if err != nil {
		t.Fatal(err)
	}
	var resp wire.UpdateResponse
	do(t, "POST", base+"/v1/h/"+name+"/insert", wire.BatchContentType, body, http.StatusOK, &resp)
	return resp
}

func TestWALIngestEndToEnd(t *testing.T) {
	walDir := t.TempDir()
	_, ts := newTestServer(t, Config{WAL: wal.Options{Dir: walDir, Sync: wal.SyncAlways}})

	mustCreate(t, ts.URL, "lat", FamilyDADO, 2048, 2)

	// Acks carry increasing LSNs (the create took LSN 1).
	r1 := mustInsertJSON(t, ts.URL, "lat", seqValues(100))
	r2 := mustInsertBinary(t, ts.URL, "lat", seqValues(50))
	if r1.LSN == 0 || r2.LSN != r1.LSN+1 {
		t.Fatalf("ack LSNs = %d, %d; want consecutive non-zero", r1.LSN, r2.LSN)
	}
	if r1.Applied != 100 || r2.Applied != 50 {
		t.Fatalf("applied = %d, %d", r1.Applied, r2.Applied)
	}

	// Deletes flow through the log too.
	body, _ := json.Marshal(wire.ValuesRequest{Values: []float64{1, 2, 3}})
	var rd wire.UpdateResponse
	do(t, "POST", ts.URL+"/v1/h/lat/delete", "application/json", body, http.StatusOK, &rd)
	if rd.LSN != r2.LSN+1 {
		t.Fatalf("delete ack LSN = %d, want %d", rd.LSN, r2.LSN+1)
	}

	// The digester folds asynchronously; the total converges to the
	// exact count.
	deadline := time.Now().Add(10 * time.Second)
	for getTotal(t, ts.URL, "lat") != 147 {
		if time.Now().After(deadline) {
			t.Fatalf("total never converged: %v, want 147", getTotal(t, ts.URL, "lat"))
		}
		time.Sleep(time.Millisecond)
	}

	st := getWALStatus(t, ts.URL)
	if !st.Enabled || st.Dir != walDir || st.SyncPolicy != "always" {
		t.Fatalf("status identity = %+v", st)
	}
	if st.AppendedLSN != 4 || st.DigestedLSN != 4 || st.LagRecords != 0 {
		t.Fatalf("status watermarks = %+v", st)
	}
	if st.Segments < 1 || st.ActiveSegmentBytes <= 0 || st.TotalBytes < st.ActiveSegmentBytes {
		t.Fatalf("status segment shape = %+v", st)
	}
}

func TestWALStatusDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := getWALStatus(t, ts.URL)
	if st.Enabled || st.Dir != "" || st.AppendedLSN != 0 {
		t.Fatalf("status without WAL = %+v", st)
	}
}

// TestWALCrashRecovery is the core durability claim in-process: every
// acked batch survives a crash that skips the final checkpoint, across
// a mid-stream checkpoint and a mix of inserts and deletes.
func TestWALCrashRecovery(t *testing.T) {
	catDir, walDir := t.TempDir(), t.TempDir()
	s, ts := newCrashableServer(t, walConfig(catDir, walDir))

	mustCreate(t, ts.URL, "lat", FamilyDVO, 4096, 2)
	want := 0.0
	for i := 0; i < 10; i++ {
		mustInsertJSON(t, ts.URL, "lat", seqValues(64))
		want += 64
		if i == 4 {
			// A checkpoint mid-stream: earlier records land via the
			// catalog, later ones via replay.
			waitDigested(t, s)
			if err := s.CheckpointNow(); err != nil {
				t.Fatalf("CheckpointNow: %v", err)
			}
		}
	}
	body, _ := json.Marshal(wire.ValuesRequest{Values: seqValues(16)})
	do(t, "POST", ts.URL+"/v1/h/lat/delete", "application/json", body, http.StatusOK, nil)
	want -= 16
	crash(s)

	_, ts2 := newTestServer(t, walConfig(catDir, walDir))
	if got := getTotal(t, ts2.URL, "lat"); got != want {
		t.Fatalf("recovered total = %v, want %v (acked batches lost or double-applied)", got, want)
	}
	// The recovered server keeps ingesting durably.
	mustInsertJSON(t, ts2.URL, "lat", seqValues(8))
	deadline := time.Now().Add(10 * time.Second)
	for getTotal(t, ts2.URL, "lat") != want+8 {
		if time.Now().After(deadline) {
			t.Fatalf("post-recovery total = %v, want %v", getTotal(t, ts2.URL, "lat"), want+8)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWALRecoveryWithoutCatalog replays creates, drops and batches from
// the log alone: with no catalog directory the log is the only durable
// state.
func TestWALRecoveryWithoutCatalog(t *testing.T) {
	walDir := t.TempDir()
	cfg := Config{WAL: wal.Options{Dir: walDir, Sync: wal.SyncAlways}}
	s, ts := newCrashableServer(t, cfg)

	mustCreate(t, ts.URL, "keep", FamilyAC, 4096, 2)
	mustCreate(t, ts.URL, "tmp", FamilyDC, 1024, 1)
	mustInsertJSON(t, ts.URL, "keep", seqValues(200))
	do(t, "DELETE", ts.URL+"/v1/h/tmp", "", nil, http.StatusNoContent, nil)
	crash(s)

	_, ts2 := newTestServer(t, cfg)
	if got := getTotal(t, ts2.URL, "keep"); got != 200 {
		t.Fatalf("replayed total = %v, want 200", got)
	}
	var info wire.Info
	do(t, "GET", ts2.URL+"/v1/h/keep", "", nil, http.StatusOK, &info)
	if info.Family != FamilyAC || info.MemBytes != 4096 {
		t.Fatalf("replayed create lost its config: %+v", info)
	}
	do(t, "GET", ts2.URL+"/v1/h/tmp", "", nil, http.StatusNotFound, nil)
}

// TestWALDropNotResurrected: a histogram checkpointed into the catalog
// and then dropped must stay dropped after a crash — the OpDrop record
// replays and the catalog file is gone.
func TestWALDropNotResurrected(t *testing.T) {
	catDir, walDir := t.TempDir(), t.TempDir()
	s, ts := newCrashableServer(t, walConfig(catDir, walDir))

	mustCreate(t, ts.URL, "doomed", FamilyDADO, 1024, 1)
	mustInsertJSON(t, ts.URL, "doomed", seqValues(32))
	waitDigested(t, s)
	if err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	do(t, "DELETE", ts.URL+"/v1/h/doomed", "", nil, http.StatusNoContent, nil)
	crash(s)

	_, ts2 := newTestServer(t, walConfig(catDir, walDir))
	do(t, "GET", ts2.URL+"/v1/h/doomed", "", nil, http.StatusNotFound, nil)
	if _, err := os.Stat(filepath.Join(catDir, "doomed"+CatalogExt)); !os.IsNotExist(err) {
		t.Fatalf("catalog file survived the drop (stat: %v)", err)
	}
}

// TestCheckpointReplayOverlapIdempotent is the checkpoint/ingest race
// regression. Checkpoints run concurrently with serial acked ingest, so
// catalog snapshots land at arbitrary fold positions; the crash then
// loses the WAL position file entirely, forcing replay from LSN 0 over
// histograms whose snapshots already contain a prefix of the log. The
// covered-LSN stamp inside each catalog entry must make that overlap
// replay idempotent — the recovered total is exact, not inflated.
func TestCheckpointReplayOverlapIdempotent(t *testing.T) {
	catDir, walDir := t.TempDir(), t.TempDir()
	s, ts := newCrashableServer(t, walConfig(catDir, walDir))

	mustCreate(t, ts.URL, "race", FamilyDC, 2048, 2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := s.CheckpointNow(); err != nil {
					t.Errorf("CheckpointNow: %v", err)
					return
				}
			}
		}
	}()
	const batches, per = 50, 10
	for i := 0; i < batches; i++ {
		mustInsertJSON(t, ts.URL, "race", seqValues(per))
	}
	close(stop)
	wg.Wait()
	crash(s)

	// Simulate the worst crash point: catalog files durable, the WAL's
	// own position update lost. Replay must start from zero and still
	// not double-apply what the snapshots already hold.
	if err := os.Remove(filepath.Join(walDir, "wal.pos")); err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, walConfig(catDir, walDir))
	if got := getTotal(t, ts2.URL, "race"); got != batches*per {
		t.Fatalf("recovered total = %v, want %v (overlap replay not idempotent)", got, batches*per)
	}
}

// TestWALTornTailRecovery appends garbage to the newest segment after a
// crash — a torn final record — and expects recovery to keep every
// acked batch, skip the tail, and keep serving.
func TestWALTornTailRecovery(t *testing.T) {
	catDir, walDir := t.TempDir(), t.TempDir()
	s, ts := newCrashableServer(t, walConfig(catDir, walDir))

	mustCreate(t, ts.URL, "lat", FamilyDADO, 2048, 2)
	for i := 0; i < 5; i++ {
		mustInsertJSON(t, ts.URL, "lat", seqValues(40))
	}
	crash(s)

	des, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, de := range des {
		if strings.HasSuffix(de.Name(), wal.SegmentExt) {
			newest = de.Name() // sorted: last .wal wins
		}
	}
	if newest == "" {
		t.Fatal("no segment files")
	}
	f, err := os.OpenFile(filepath.Join(walDir, newest), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn-by-a-crash-mid-append......")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, ts2 := newTestServer(t, walConfig(catDir, walDir))
	if got := getTotal(t, ts2.URL, "lat"); got != 200 {
		t.Fatalf("recovered total = %v, want 200 (torn tail must not eat acked records)", got)
	}
	mustInsertJSON(t, ts2.URL, "lat", seqValues(10))
}

// TestWALIngestFaults drives the live ingest path over injected disk
// failures: a full disk surfaces as 503 on insert (and the ack LSN is
// not burned into the registry), a failed create append rolls the
// registry entry back, and clearing the fault restores service with no
// acked data lost.
func TestWALIngestFaults(t *testing.T) {
	walDir := t.TempDir()
	inj := fsfault.NewInjector(nil)
	_, ts := newTestServer(t, Config{
		WAL: wal.Options{Dir: walDir, FS: inj, Sync: wal.SyncAlways},
	})

	mustCreate(t, ts.URL, "lat", FamilyDADO, 2048, 1)
	mustInsertJSON(t, ts.URL, "lat", seqValues(20))

	// Disk full: the append fails, the handler refuses the ack.
	inj.LimitWrites(4, nil)
	body, _ := json.Marshal(wire.ValuesRequest{Values: seqValues(20)})
	do(t, "POST", ts.URL+"/v1/h/lat/insert", "application/json", body, http.StatusServiceUnavailable, nil)

	// A create whose log append fails must not leave a half-registered
	// histogram behind.
	cbody, _ := json.Marshal(wire.CreateRequest{Name: "ghost", Family: FamilyDC})
	do(t, "POST", ts.URL+"/v1/h", "application/json", cbody, http.StatusInternalServerError, nil)
	do(t, "GET", ts.URL+"/v1/h/ghost", "", nil, http.StatusNotFound, nil)

	// Space returns: ingest resumes, only acked batches count.
	inj.Reset()
	mustInsertJSON(t, ts.URL, "lat", seqValues(20))
	deadline := time.Now().Add(10 * time.Second)
	for getTotal(t, ts.URL, "lat") != 40 {
		if time.Now().After(deadline) {
			t.Fatalf("total = %v, want 40", getTotal(t, ts.URL, "lat"))
		}
		time.Sleep(time.Millisecond)
	}
	st := getWALStatus(t, ts.URL)
	if st.AppendedLSN != 3 {
		t.Fatalf("AppendedLSN = %d, want 3 (failed appends must not count)", st.AppendedLSN)
	}
}

// TestCatalogOldVersionsStillDecode pins backward compatibility: a
// catalog entry written in the pre-WAL v2 layout (no covered-LSN
// field) still restores with a zero position (replay everything), and
// a v3 entry (covered LSN but no site watermark) restores with a zero
// watermark.
func TestCatalogOldVersionsStillDecode(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Create(wire.CreateRequest{Name: "old", Family: FamilyDADO, MemBytes: 1024, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	e, err := reg.get("old")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.h.InsertBatch(seqValues(10)); err != nil {
		t.Fatal(err)
	}
	v5, err := EncodeEntry(e, 77, 9001)
	if err != nil {
		t.Fatal(err)
	}
	// The v5 blob ends with the feedback-journal field (u32 zero
	// length here — no feedback observed); a v4 blob is v5 without it.
	v4 := append([]byte(nil), v5[:len(v5)-4]...)
	v4[4], v4[5] = 4, 0 // little-endian version 4
	// The covered LSN and site watermark sit back to back after
	// name/mem/seed. Rewrite the blob as v2 (drop both) and as v3
	// (drop only the watermark), stamping the old version numbers.
	nameLen := len("old")
	cut := 4 + 2 + 2 + nameLen + 4 + 8
	v2 := append([]byte(nil), v4[:cut]...)
	v2 = append(v2, v4[cut+16:]...)
	v2[4], v2[5] = 2, 0 // little-endian version 2
	v3 := append([]byte(nil), v4[:cut+8]...)
	v3 = append(v3, v4[cut+16:]...)
	v3[4], v3[5] = 3, 0 // little-endian version 3

	got, err := DecodeEntry(v2)
	if err != nil {
		t.Fatalf("DecodeEntry(v2): %v", err)
	}
	if got.walLSN != 0 || got.siteWM.Load() != 0 {
		t.Fatalf("v2 entry decoded with walLSN %d siteWM %d, want 0 0", got.walLSN, got.siteWM.Load())
	}
	if got.h.Total() != 10 {
		t.Fatalf("v2 entry total = %v, want 10", got.h.Total())
	}

	got3, err := DecodeEntry(v3)
	if err != nil {
		t.Fatalf("DecodeEntry(v3): %v", err)
	}
	if got3.walLSN != 77 || got3.siteWM.Load() != 0 {
		t.Fatalf("v3 entry decoded with walLSN %d siteWM %d, want 77 0", got3.walLSN, got3.siteWM.Load())
	}

	// And both the v4 layout and the current v5 round trip keep the
	// stamps.
	for label, blob := range map[string][]byte{"v4": v4, "v5": v5} {
		got, err := DecodeEntry(blob)
		if err != nil {
			t.Fatalf("DecodeEntry(%s): %v", label, err)
		}
		if got.walLSN != 77 || got.siteWM.Load() != 9001 {
			t.Fatalf("%s entry decoded with walLSN %d siteWM %d, want 77 9001",
				label, got.walLSN, got.siteWM.Load())
		}
	}
}
