package server

import (
	"io"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"dynahist"
	"dynahist/internal/wire"
)

// peerCfg returns a Config for an in-memory peer-role node. The
// anti-entropy period is set to an hour so tests drive every sync
// explicitly through SyncPeersNow.
func peerCfg(site string, peers ...string) Config {
	return Config{SiteID: site, Peers: peers, AntiEntropyEvery: time.Hour, PeerTimeout: 2 * time.Second}
}

// TestPeersRequireSiteID pins the config contract: a peer list without
// a site identity is a misconfiguration, not a default.
func TestPeersRequireSiteID(t *testing.T) {
	_, err := New(Config{Peers: []string{"http://localhost:1"}})
	if err == nil {
		t.Fatal("New with Peers but no SiteID: want error, got nil")
	}
}

// TestEnvelopeEndpoint checks the scatter-gather read unit: the
// envelope is publicly restorable, and the site/watermark/total
// headers describe it.
func TestEnvelopeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{SiteID: "s1"})
	mustCreate(t, ts.URL, "lat", FamilyDADO, 1024, 2)
	mustInsertJSON(t, ts.URL, "lat", seqValues(10))

	resp, err := http.Get(ts.URL + "/v1/h/lat/envelope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.EnvelopeContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, wire.EnvelopeContentType)
	}
	if site := resp.Header.Get(wire.HeaderSite); site != "s1" {
		t.Fatalf("%s = %q, want %q", wire.HeaderSite, site, "s1")
	}
	wm, err := strconv.ParseUint(resp.Header.Get(wire.HeaderWatermark), 10, 64)
	if err != nil || wm == 0 {
		t.Fatalf("%s = %q, want a positive integer", wire.HeaderWatermark, resp.Header.Get(wire.HeaderWatermark))
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	h, err := dynahist.Restore(blob)
	if err != nil {
		t.Fatalf("Restore(envelope): %v", err)
	}
	if h.Total() != 10 {
		t.Fatalf("restored total = %v, want 10", h.Total())
	}

	// Unknown names 404.
	r2, err := http.Get(ts.URL + "/v1/h/nope/envelope")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("envelope of unknown name: status %d, want 404", r2.StatusCode)
	}
}

// TestAntiEntropyReplicationAdoptionPruning walks the whole peer
// protocol on in-memory nodes: B ingests, A replicates B's histogram
// via one sync round and re-serves it from its own catalog; a fresh
// node claiming B's site identity adopts the replica from A (the
// rejoin path) without re-ingesting anything; deleting on B prunes the
// replica from A on the next round.
func TestAntiEntropyReplicationAdoptionPruning(t *testing.T) {
	bSrv, bTS := newTestServer(t, peerCfg("b"))
	mustCreate(t, bTS.URL, "lat", FamilyDADO, 1024, 2)
	mustInsertJSON(t, bTS.URL, "lat", seqValues(20))
	bWM := bSrv.watermark()
	if bWM == 0 {
		t.Fatal("B watermark is 0 after create+insert")
	}

	aSrv, aTS := newTestServer(t, peerCfg("a", bTS.URL))
	if errs := aSrv.SyncPeersNow(); len(errs) != 0 {
		t.Fatalf("A sync: %v", errs)
	}

	// A now lists b/lat at B's watermark.
	var cat wire.SiteCatalogResponse
	do(t, "GET", aTS.URL+"/v1/sites/catalog", "", nil, http.StatusOK, &cat)
	found := false
	for _, row := range cat.Entries {
		if row.Site == "b" && row.Name == "lat" {
			found = true
			if row.Watermark != bWM {
				t.Fatalf("replica watermark = %d, want %d", row.Watermark, bWM)
			}
			if row.Total != 20 {
				t.Fatalf("replica total = %v, want 20", row.Total)
			}
		}
	}
	if !found {
		t.Fatalf("A's catalog misses b/lat: %+v", cat.Entries)
	}

	// A re-serves the replica blob, and it decodes to the real data.
	resp, err := http.Get(aTS.URL + "/v1/sites/entry?site=b&name=lat")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("entry fetch: status %d err %v", resp.StatusCode, err)
	}
	e, err := DecodeEntry(blob)
	if err != nil {
		t.Fatalf("replica blob does not decode: %v", err)
	}
	if e.h.Total() != 20 {
		t.Fatalf("replica decodes to total %v, want 20", e.h.Total())
	}

	// Rejoin: a fresh node claiming site "b" adopts A's replica and
	// serves the data without a single ingest.
	b2Srv, b2TS := newTestServer(t, peerCfg("b", aTS.URL))
	if errs := b2Srv.SyncPeersNow(); len(errs) != 0 {
		t.Fatalf("B2 sync: %v", errs)
	}
	var list wire.ListResponse
	do(t, "GET", b2TS.URL+"/v1/h", "", nil, http.StatusOK, &list)
	if len(list.Histograms) != 1 || list.Histograms[0].Name != "lat" || list.Histograms[0].Total != 20 {
		t.Fatalf("B2 after adoption lists %+v, want lat with total 20", list.Histograms)
	}
	if got := b2Srv.watermark(); got < bWM {
		t.Fatalf("B2 watermark %d after adoption, want >= %d", got, bWM)
	}

	// A second round is a no-op: the adoption lifted B2's watermark, so
	// the replica is no longer ahead.
	if errs := b2Srv.SyncPeersNow(); len(errs) != 0 {
		t.Fatalf("B2 second sync: %v", errs)
	}

	// Rejoin safety: syncing against an EMPTY node claiming site "b"
	// (a node rebuilt on lost disks, watermark zero) must NOT prune the
	// replica — it is exactly what that node needs to adopt back.
	_, emptyTS := newTestServer(t, peerCfg("b"))
	if err := aSrv.syncPeer(emptyTS.URL); err != nil {
		t.Fatalf("A sync against empty b: %v", err)
	}
	aSrv.replMu.RLock()
	_, stillHeld := aSrv.replicas["b"]["lat"]
	aSrv.replMu.RUnlock()
	if !stillHeld {
		t.Fatal("syncing against an empty watermark-zero node pruned the replica it needs back")
	}

	// Deletion propagates: B drops lat, A's next round prunes the
	// replica instead of keeping a ghost.
	do(t, "DELETE", bTS.URL+"/v1/h/lat", "", nil, http.StatusNoContent, nil)
	if errs := aSrv.SyncPeersNow(); len(errs) != 0 {
		t.Fatalf("A sync after delete: %v", errs)
	}
	var cat2 wire.SiteCatalogResponse
	do(t, "GET", aTS.URL+"/v1/sites/catalog", "", nil, http.StatusOK, &cat2)
	for _, row := range cat2.Entries {
		if row.Site == "b" {
			t.Fatalf("A still lists pruned replica %+v", row)
		}
	}
}

// TestRejoinAdoptsEveryHistogram is the multi-histogram rejoin
// regression: adoption is gated per entry, so a node that lost N
// histograms recovers all N in one sync round — not just the first
// catalog row before the node-wide watermark catches up.
func TestRejoinAdoptsEveryHistogram(t *testing.T) {
	bSrv, bTS := newTestServer(t, peerCfg("b"))
	names := []string{"h0", "h1", "h2"}
	for i, n := range names {
		mustCreate(t, bTS.URL, n, FamilyDADO, 1024, 1)
		mustInsertJSON(t, bTS.URL, n, seqValues(10*(i+1)))
	}
	bWM := bSrv.watermark()

	aSrv, aTS := newTestServer(t, peerCfg("a", bTS.URL))
	if errs := aSrv.SyncPeersNow(); len(errs) != 0 {
		t.Fatalf("A sync: %v", errs)
	}

	// Total disk loss: a fresh node claiming site "b" must adopt every
	// histogram from A's replicas in a single round.
	b2Srv, b2TS := newTestServer(t, peerCfg("b", aTS.URL))
	if errs := b2Srv.SyncPeersNow(); len(errs) != 0 {
		t.Fatalf("B2 sync: %v", errs)
	}
	var list wire.ListResponse
	do(t, "GET", b2TS.URL+"/v1/h", "", nil, http.StatusOK, &list)
	if len(list.Histograms) != len(names) {
		t.Fatalf("B2 adopted %d histogram(s) in one round, want %d: %+v",
			len(list.Histograms), len(names), list.Histograms)
	}
	for i, info := range list.Histograms { // sorted by name: h0, h1, h2
		if want := float64(10 * (i + 1)); info.Name != names[i] || info.Total != want {
			t.Fatalf("B2 histogram %d = %+v, want %s with total %v", i, info, names[i], want)
		}
	}
	if got := b2Srv.watermark(); got < bWM {
		t.Fatalf("B2 watermark %d after adopting everything, want >= %d", got, bWM)
	}
}

// TestCatalogAdvertisesPerEntryWatermarks pins the steady-state side
// of per-entry watermarks: ingest into one histogram must not inflate
// the advertised coverage of another, so peers re-pull only what
// actually changed.
func TestCatalogAdvertisesPerEntryWatermarks(t *testing.T) {
	_, ts := newTestServer(t, Config{SiteID: "s"})
	mustCreate(t, ts.URL, "hot", FamilyDADO, 1024, 1)
	mustCreate(t, ts.URL, "cold", FamilyDADO, 1024, 1)
	mustInsertJSON(t, ts.URL, "hot", seqValues(5))
	mustInsertJSON(t, ts.URL, "cold", seqValues(5))

	rowWM := func() map[string]uint64 {
		var cat wire.SiteCatalogResponse
		do(t, "GET", ts.URL+"/v1/sites/catalog", "", nil, http.StatusOK, &cat)
		out := map[string]uint64{}
		for _, row := range cat.Entries {
			out[row.Name] = row.Watermark
		}
		return out
	}
	before := rowWM()
	if before["hot"] == 0 || before["cold"] == 0 {
		t.Fatalf("zero advertised watermark after ingest: %v", before)
	}

	mustInsertJSON(t, ts.URL, "hot", seqValues(5))
	after := rowWM()
	if after["hot"] <= before["hot"] {
		t.Fatalf("hot watermark %d -> %d, want an increase", before["hot"], after["hot"])
	}
	if after["cold"] != before["cold"] {
		t.Fatalf("cold watermark %d -> %d changed without a mutation", before["cold"], after["cold"])
	}
}

// TestSyncRoundsAreSerialized drives SyncPeersNow from several
// goroutines, racing the background anti-entropy loop and live ingest
// on both nodes — the lock coverage test for syncMu under -race.
func TestSyncRoundsAreSerialized(t *testing.T) {
	_, bTS := newTestServer(t, peerCfg("b"))
	mustCreate(t, bTS.URL, "lat", FamilyDADO, 1024, 1)
	mustInsertJSON(t, bTS.URL, "lat", seqValues(10))

	aSrv, aTS := newTestServer(t, Config{
		SiteID: "a", Peers: []string{bTS.URL},
		AntiEntropyEvery: time.Millisecond, PeerTimeout: 2 * time.Second,
	})
	mustCreate(t, aTS.URL, "own", FamilyDADO, 1024, 1)

	var wg sync.WaitGroup
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 10 {
				if errs := aSrv.SyncPeersNow(); len(errs) != 0 {
					t.Errorf("SyncPeersNow: %v", errs)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range 10 {
			mustInsertJSON(t, aTS.URL, "own", seqValues(8))
			mustInsertJSON(t, bTS.URL, "lat", seqValues(8))
		}
	}()
	wg.Wait()

	aSrv.replMu.RLock()
	_, held := aSrv.replicas["b"]["lat"]
	aSrv.replMu.RUnlock()
	if !held {
		t.Fatal("A holds no replica of b/lat after concurrent sync rounds")
	}
}

// TestAdoptionSkippedWhenLocalIsFresh pins the watermark guard: a
// node whose local state is at or past the replica's watermark keeps
// its own data.
func TestAdoptionSkippedWhenLocalIsFresh(t *testing.T) {
	bSrv, bTS := newTestServer(t, peerCfg("b"))
	mustCreate(t, bTS.URL, "lat", FamilyDADO, 1024, 1)
	mustInsertJSON(t, bTS.URL, "lat", seqValues(5))

	aSrv, aTS := newTestServer(t, peerCfg("a", bTS.URL))
	if errs := aSrv.SyncPeersNow(); len(errs) != 0 {
		t.Fatalf("A sync: %v", errs)
	}

	// B keeps ingesting past the replicated snapshot.
	mustInsertJSON(t, bTS.URL, "lat", seqValues(5))
	freshTotal := bSrv.reg.entries()[0].h.Total()
	if freshTotal != 10 {
		t.Fatalf("B total = %v, want 10", freshTotal)
	}

	// B syncs against A, which holds the stale 5-value replica. B's
	// watermark is ahead, so nothing is adopted.
	if err := bSrv.syncPeer(aTS.URL); err != nil {
		t.Fatalf("B sync: %v", err)
	}
	if got := bSrv.reg.entries()[0].h.Total(); got != freshTotal {
		t.Fatalf("B total changed to %v after syncing a stale replica, want %v", got, freshTotal)
	}
}
