package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dynahist"
	"dynahist/internal/wal"
	"dynahist/internal/wire"
)

// maxBodyBytes caps ingest request bodies (~8M values binary).
const maxBodyBytes = 64 << 20

// Config parameterises a Server.
type Config struct {
	// CatalogDir, when non-empty, enables snapshot-backed recovery: the
	// registry is restored from it at startup and checkpointed into it
	// by CheckpointNow and the periodic loop.
	CatalogDir string
	// CheckpointEvery is the period of the background checkpoint loop;
	// zero disables the loop (checkpoints then happen only via
	// CheckpointNow and on Close).
	CheckpointEvery time.Duration
	// Logger receives recovery and checkpoint diagnostics; nil logs to
	// the standard logger.
	Logger *log.Logger
	// WAL, when WAL.Dir is non-empty, enables durable ingest: mutating
	// requests are appended to a segmented write-ahead log and acked
	// once durable per WAL.Sync, a background digester folds them into
	// the histograms, and recovery replays the tail past the last
	// checkpoint. See internal/wal.Options.
	WAL wal.Options

	// SiteID names this node in a multi-node deployment (paper §8: each
	// site maintains histograms over its own slice, and any reader can
	// union them losslessly into a global view). Required when Peers is
	// set; with no peers it merely tags the envelope endpoints.
	SiteID string
	// Peers are the base URLs ("http://host:port") of the other sites.
	// When non-empty the server runs the anti-entropy loop: it
	// periodically pulls each peer's site catalog, stores fresher
	// replicas of other sites' histograms, and adopts a peer's replica
	// of its *own* site when that replica is ahead of local state — the
	// rejoin path, which catches a restarted node up from snapshot
	// envelopes instead of re-ingested raw data.
	Peers []string
	// AntiEntropyEvery is the peer sync period; zero defaults to 1s.
	AntiEntropyEvery time.Duration
	// PeerTimeout bounds each HTTP call to a peer; zero defaults to 2s.
	PeerTimeout time.Duration

	// Tuning enables the query-feedback self-tuning loop (see
	// internal/tuner and the handlers in tuning.go).
	Tuning TuningConfig

	// Metrics mounts the observability exposition endpoints: GET
	// /metrics (Prometheus text format) and GET /v1/stats (structured
	// JSON). Collection itself is always on — it is allocation-free on
	// the serving paths — so enabling this mid-fleet exposes history,
	// not just data from the flag-flip onward.
	Metrics bool
}

// Server is the histserved HTTP serving layer: a histogram registry,
// its REST handlers, and the checkpoint loop. Create one with New,
// mount Handler on an http.Server, and Close it on shutdown for a
// final checkpoint.
type Server struct {
	cfg     Config
	reg     *Registry
	mux     *http.ServeMux
	log     *log.Logger
	metrics *serverMetrics

	// catMu serialises catalog writes against each other and against
	// deletes, so a checkpoint pass cannot resurrect a file removed by
	// a concurrent DELETE.
	catMu sync.Mutex

	// Durable-ingest state (nil/zero when Config.WAL.Dir is empty).
	wal        *wal.Log
	digestCh   chan wal.Record
	digestDone chan struct{}
	// digestMu is held by the digester across each record fold and by
	// CheckpointNow while it snapshots, so a checkpoint can never
	// observe a half-applied record or misstate the WAL position its
	// snapshots cover.
	digestMu   sync.Mutex
	digestVals []float64 // digester's decode scratch (serialised by digestMu)
	// walMu guards ingest appends against shutdown closing digestCh.
	walMu      sync.RWMutex
	walStopped bool

	// Site watermark: the monotonic counter peers use to decide whether
	// one snapshot envelope of this site is fresher than another. On a
	// WAL server the base is the digested LSN (persisted, replayed); on
	// an in-memory server it is wmBase, bumped per applied mutation.
	// wmOffset lifts the advertised watermark above the base after the
	// node adopts a peer replica numbered in its pre-restart sequence —
	// so post-adoption ingest keeps the watermark strictly increasing
	// instead of stalling below the adopted value.
	wmBase   atomic.Uint64
	wmOffset atomic.Uint64

	// Replica store: catalog-entry blobs of other sites' histograms,
	// pulled by the anti-entropy loop and re-served to peers (which is
	// what lets a rejoining third node catch up from either survivor).
	replMu   sync.RWMutex
	replicas map[string]map[string]replica

	// syncMu serialises anti-entropy rounds: the loop and any
	// SyncPeersNow callers take it around each syncPeer, so adoption,
	// replica writes and watermark advancement never run concurrently
	// with another round.
	syncMu sync.Mutex

	peerHTTP *http.Client

	stopOnce sync.Once
	stop     chan struct{}
	loopDone chan struct{}
	aeDone   chan struct{}
}

// New builds a server, restoring the registry from cfg.CatalogDir when
// set (corrupt catalog files are skipped and logged, never fatal) and
// starting the periodic checkpoint loop when cfg.CheckpointEvery > 0.
func New(cfg Config) (*Server, error) {
	if len(cfg.Peers) > 0 && cfg.SiteID == "" {
		return nil, errors.New("server: peers configured without a site ID")
	}
	if cfg.AntiEntropyEvery <= 0 {
		cfg.AntiEntropyEvery = time.Second
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 2 * time.Second
	}
	s := &Server{
		cfg:      cfg,
		reg:      NewRegistry(),
		mux:      http.NewServeMux(),
		log:      cfg.Logger,
		replicas: make(map[string]map[string]replica),
		peerHTTP: &http.Client{Timeout: cfg.PeerTimeout},
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
		aeDone:   make(chan struct{}),
	}
	if s.log == nil {
		s.log = log.New(os.Stderr, "histserved: ", log.LstdFlags)
	}
	if cfg.CatalogDir != "" {
		if err := os.MkdirAll(cfg.CatalogDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: catalog dir: %w", err)
		}
		for _, err := range loadCatalog(cfg.CatalogDir, s.reg) {
			s.log.Printf("recovery: skipping entry: %v", err)
		}
		if n := s.reg.Len(); n > 0 {
			s.log.Printf("recovered %d histogram(s) from %s", n, cfg.CatalogDir)
		}
	}
	if cfg.WAL.Dir != "" {
		if err := s.startWAL(); err != nil {
			return nil, fmt.Errorf("server: wal: %w", err)
		}
	}
	s.seedWatermark()
	// Metric registration needs the WAL handle (function-backed WAL
	// metrics) and must precede routes (the middleware resolves its
	// per-endpoint handles at mount time) and the anti-entropy loop
	// (which updates per-peer counters).
	s.metrics = newServerMetrics(s)
	s.routes()
	if cfg.CatalogDir != "" && cfg.CheckpointEvery > 0 {
		go s.checkpointLoop()
	} else {
		close(s.loopDone)
	}
	if len(cfg.Peers) > 0 {
		go s.antiEntropyLoop()
	} else {
		close(s.aeDone)
	}
	return s, nil
}

// seedWatermark re-seeds the advertised site watermark from the
// restored catalog: the maximum watermark any surviving entry covers.
// On a WAL server the base (digested LSN) usually already exceeds it —
// the offset only lifts the watermark when a previous adoption pushed
// it past the local sequence. Called after catalog restore and WAL
// replay, before any endpoint is mounted.
func (s *Server) seedWatermark() {
	var maxWM uint64
	for _, e := range s.reg.entries() {
		if wm := e.siteWM.Load(); wm > maxWM {
			maxWM = wm
		}
	}
	base := s.watermarkBase()
	if maxWM > base {
		s.wmOffset.Store(maxWM - base)
	}
}

// watermarkBase is the monotonic local-ingest counter: the WAL digested
// LSN on durable servers, the in-memory mutation counter otherwise.
func (s *Server) watermarkBase() uint64 {
	if s.wal != nil {
		return s.wal.DigestedLSN()
	}
	return s.wmBase.Load()
}

// watermark is the site watermark this node advertises: how much of its
// site's ingest its current in-memory state covers. Monotonic across
// restarts (the base replays/reloads, the offset is re-seeded from the
// catalog) and across adoptions (advanceWatermark lifts the offset).
//
// Watermark contract: a per-entry watermark (entry.siteWM, what catalog
// rows and entry/envelope responses carry) never overstates the
// snapshot it is paired with — the stamp lands only after the mutation
// applies, and WAL servers additionally freeze the digester while
// reading both. On in-memory servers the pairing is unsynchronised
// against concurrent ingest, so an advertised watermark may briefly
// *under*state what a snapshot already contains; peers then re-rank or
// re-pull a copy they could have skipped, which the next round heals.
// The adoption logic only relies on the safe direction: coverage
// claimed is coverage present.
func (s *Server) watermark() uint64 {
	return s.watermarkBase() + s.wmOffset.Load()
}

// noteMutation advances the in-memory watermark base. WAL servers track
// the digested LSN instead, so this is a no-op there.
func (s *Server) noteMutation() {
	if s.wal == nil {
		s.wmBase.Add(1)
	}
}

// advanceWatermark lifts the advertised watermark to at least wm (used
// after adopting a peer replica numbered in this site's pre-restart
// sequence). Serialized by syncMu; the base may advance concurrently
// under it, which at worst lifts the result past wm — never below.
func (s *Server) advanceWatermark(wm uint64) {
	if cur := s.watermark(); wm > cur {
		s.wmOffset.Add(wm - cur)
	}
}

// Registry exposes the server's registry (used by tests and the
// serving experiment).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the HTTP handler serving the /v1 API and /healthz.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the checkpoint loop, drains the WAL digester, and takes
// a final checkpoint so no acknowledged write older than the last
// catalog write is lost beyond the snapshot's own approximation. Call
// it after the HTTP listener has shut down — in-flight ingest requests
// racing a Close may be refused with a shutdown error.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.loopDone
	<-s.aeDone
	if s.wal != nil {
		s.stopWAL()
	}
	var firstErr error
	if s.cfg.CatalogDir != "" {
		firstErr = s.CheckpointNow()
	}
	if s.wal != nil {
		if err := s.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// checkpointLoop periodically persists every registered histogram.
func (s *Server) checkpointLoop() {
	defer close(s.loopDone)
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if err := s.CheckpointNow(); err != nil {
				s.log.Printf("checkpoint: %v", err)
			}
		}
	}
}

// CheckpointNow serializes every registered histogram into the catalog
// directory, one atomically replaced file per histogram. Entries
// deleted while the pass runs are skipped. Returns the first error,
// after attempting every entry.
//
// With the WAL enabled, the pass pauses the digester between records
// while it encodes the snapshots, so the catalog captures a consistent
// fold state and — the part a crash cares about — the exact WAL
// position that state covers. Only after every file is durably written
// is that position recorded and the fully-digested segments truncated;
// any file failure keeps the log intact so recovery can still replay.
func (s *Server) CheckpointNow() error {
	if s.cfg.CatalogDir == "" {
		return errors.New("server: no catalog directory configured")
	}
	s.catMu.Lock()
	defer s.catMu.Unlock()

	// Freeze the fold: no record is mid-apply while digestMu is held,
	// and the digested LSN is exactly what the snapshots will contain.
	// Appends (and acks) continue — only digestion stalls.
	var cover uint64
	if s.wal != nil {
		s.digestMu.Lock()
		// Read the position first: it is frozen while digestMu is held,
		// and stamping it into every entry file makes snapshot and
		// position one atomic unit per histogram.
		cover = s.wal.DigestedLSN()
	}
	type pending struct {
		name string
		data []byte
	}
	var (
		blobs    []pending
		firstErr error
	)
	for _, e := range s.reg.entries() {
		if !s.reg.Has(e.name) {
			continue
		}
		// Each entry persists its own covered watermark, so a restart
		// re-advertises exactly the per-entry coverage peers saw live.
		data, err := EncodeEntry(e, cover, e.siteWM.Load())
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("checkpoint %q: %w", e.name, err)
			}
			continue
		}
		blobs = append(blobs, pending{e.name, data})
	}
	if s.wal != nil {
		s.digestMu.Unlock()
	}

	for _, p := range blobs {
		if !s.reg.Has(p.name) {
			continue
		}
		if err := writeCatalogFile(s.cfg.CatalogDir, p.name, p.data); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("checkpoint %q: %w", p.name, err)
		}
	}
	if s.wal != nil && firstErr == nil {
		if err := s.wal.Checkpoint(cover); err != nil {
			firstErr = err
		}
	}
	return firstErr
}

// routes mounts every endpoint, each behind the instrument middleware
// (per-endpoint request counts, in-flight gauge, latency tracker,
// status-class counters). The exposition endpoints themselves are
// mounted only under Config.Metrics.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	s.mux.HandleFunc("POST /v1/h", s.instrument("create", s.handleCreate))
	s.mux.HandleFunc("GET /v1/h", s.instrument("list", s.handleList))
	s.mux.HandleFunc("GET /v1/h/{name}", s.instrument("info", s.handleInfo))
	s.mux.HandleFunc("DELETE /v1/h/{name}", s.instrument("drop", s.handleDelete))
	s.mux.HandleFunc("POST /v1/h/{name}/insert", s.instrument("insert", s.handleUpdate(insertOp)))
	s.mux.HandleFunc("POST /v1/h/{name}/delete", s.instrument("delete", s.handleUpdate(deleteOp)))
	s.mux.HandleFunc("POST /v1/h/{name}/query", s.instrument("query", s.handleQuery))
	s.mux.HandleFunc("POST /v1/h/{name}/feedback", s.instrument("feedback", s.handleFeedback))
	s.mux.HandleFunc("GET /v1/h/{name}/total", s.instrument("total", s.handleTotal))
	s.mux.HandleFunc("GET /v1/h/{name}/cdf", s.instrument("cdf", s.handleCDF))
	s.mux.HandleFunc("GET /v1/h/{name}/quantile", s.instrument("quantile", s.handleQuantile))
	s.mux.HandleFunc("GET /v1/h/{name}/range", s.instrument("range", s.handleRange))
	s.mux.HandleFunc("GET /v1/h/{name}/buckets", s.instrument("buckets", s.handleBuckets))
	s.mux.HandleFunc("GET /v1/h/{name}/envelope", s.instrument("envelope", s.handleEnvelope))
	s.mux.HandleFunc("GET /v1/wal/status", s.instrument("wal_status", s.handleWALStatus))
	s.mux.HandleFunc("GET /v1/sites/catalog", s.instrument("site_catalog", s.handleSiteCatalog))
	s.mux.HandleFunc("GET /v1/sites/entry", s.instrument("site_entry", s.handleSiteEntry))
	s.mux.HandleFunc("GET /v1/sites/entries", s.instrument("site_entries", s.handleSiteEntries))
	if s.cfg.Metrics {
		s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
		s.mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, wire.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusOf maps registry errors onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrExists):
		return http.StatusConflict
	case errors.Is(err, ErrBadName), errors.Is(err, ErrFamily):
		return http.StatusBadRequest
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req wire.CreateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	info, err := s.reg.Create(req)
	if err != nil {
		writeErr(w, statusOf(err), "%v", err)
		return
	}
	if s.wal != nil {
		// The create must be in the log before it is acknowledged, or a
		// crash before the next checkpoint would forget the histogram
		// while replaying batches logged for it.
		body, merr := json.Marshal(req)
		if merr == nil {
			_, merr = s.appendControl(wal.OpCreate, req.Name, body)
		}
		if merr != nil {
			_ = s.reg.Delete(req.Name)
			writeErr(w, http.StatusInternalServerError, "logging create: %v", merr)
			return
		}
	}
	s.noteMutation()
	// A fresh histogram trivially covers the site sequence so far; the
	// stamp gives peers a nonzero row to rank the empty entry by.
	if e, err := s.reg.get(req.Name); err == nil {
		e.bumpSiteWM(s.watermark())
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wire.ListResponse{Histograms: s.reg.List()})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	e, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeErr(w, statusOf(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, e.info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Delete(name); err != nil {
		writeErr(w, statusOf(err), "%v", err)
		return
	}
	if s.cfg.CatalogDir != "" {
		s.catMu.Lock()
		err := os.Remove(catalogPath(s.cfg.CatalogDir, name))
		s.catMu.Unlock()
		if err != nil && !os.IsNotExist(err) {
			s.log.Printf("delete %q: removing catalog file: %v", name, err)
		}
	}
	if s.wal != nil {
		if _, err := s.appendControl(wal.OpDrop, name, nil); err != nil {
			// The in-memory drop stands, but replay may resurrect the
			// histogram from earlier records; tell the caller.
			writeErr(w, http.StatusInternalServerError, "logging delete: %v", err)
			return
		}
	}
	s.noteMutation()
	w.WriteHeader(http.StatusNoContent)
}

type updateOp int

const (
	insertOp updateOp = iota
	deleteOp
)

// ingestBuf is the per-request scratch of the ingest endpoints: the
// raw body bytes and the decoded values. Both slices are recycled
// through ingestPool, so a steady stream of same-sized binary batches
// reads and decodes with no per-request allocation at all.
type ingestBuf struct {
	body []byte
	vals []float64
}

// ingestPool recycles ingest scratch across requests. Buffers that
// grew past poolBufLimit are dropped instead of pooled, so one huge
// batch does not pin its footprint forever.
var ingestPool = sync.Pool{New: func() any { return new(ingestBuf) }}

// poolBufLimit caps the body capacity a pooled buffer may retain
// (1 MiB ≈ 128k values — far above the common batch sizes).
const poolBufLimit = 1 << 20

// readBody reads r to EOF into dst's backing array, growing it only
// when capacity runs out — io.ReadAll without the guaranteed
// allocation.
func readBody(r io.Reader, dst []byte) ([]byte, error) {
	dst = dst[:0]
	for {
		if len(dst) == cap(dst) {
			grown := make([]byte, len(dst), 2*cap(dst)+4096)
			copy(grown, dst)
			dst = grown
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// handleUpdate serves the two ingest endpoints. The body is either a
// JSON ValuesRequest or, under wire.BatchContentType, the binary batch
// format. The binary path runs on pooled buffers end to end: body
// bytes and decoded values both come from ingestPool, so steady-state
// binary ingest allocates nothing per request in this handler.
func (s *Server) handleUpdate(op updateOp) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e, err := s.reg.get(r.PathValue("name"))
		if err != nil {
			writeErr(w, statusOf(err), "%v", err)
			return
		}
		h := e.h
		buf := ingestPool.Get().(*ingestBuf)
		defer func() {
			if cap(buf.body) <= poolBufLimit && cap(buf.vals)*8 <= poolBufLimit {
				ingestPool.Put(buf)
			}
		}()
		buf.body, err = readBody(http.MaxBytesReader(w, r.Body, maxBodyBytes), buf.body)
		body := buf.body
		if err != nil {
			writeErr(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
			return
		}
		// The binary batch format is opted into by content type; any
		// other body (curl's default form type included) is parsed as
		// the JSON ValuesRequest.
		var vs []float64
		if r.Header.Get("Content-Type") == wire.BatchContentType {
			vs, err = wire.DecodeBatchInto(buf.vals[:0], body)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "%v", err)
				return
			}
			if cap(vs) > cap(buf.vals) {
				buf.vals = vs[:0]
			}
		} else {
			var req wire.ValuesRequest
			if err := json.Unmarshal(body, &req); err != nil {
				writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
				return
			}
			vs = req.Values
		}
		for i, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				writeErr(w, http.StatusBadRequest, "non-finite value at index %d", i)
				return
			}
		}
		if s.wal != nil {
			// Durable path: log the batch (a binary body verbatim, a
			// JSON one re-encoded into the same wire batch format) and
			// ack once the append is durable per the sync policy. The
			// digester folds it in asynchronously, so the reported
			// total lags by the digest queue.
			walOp := wal.OpInsert
			if op == deleteOp {
				walOp = wal.OpDelete
			}
			batch := body
			if r.Header.Get("Content-Type") != wire.BatchContentType {
				batch, err = wire.EncodeBatch(vs)
				if err != nil {
					writeErr(w, http.StatusUnprocessableEntity, "%v", err)
					return
				}
			}
			lsn, err := s.appendAndEnqueue(walOp, r.PathValue("name"), batch)
			if err != nil {
				writeErr(w, http.StatusServiceUnavailable, "durable append: %v", err)
				return
			}
			// DigestedLSN tells the caller how much of the acked log the
			// reads already reflect — once it reaches lsn, this batch is
			// folded in, not just durable.
			s.metrics.ingestBatch.Observe(float64(len(vs)))
			writeJSON(w, http.StatusOK, wire.UpdateResponse{
				Applied: len(vs), Total: h.Total(), LSN: lsn, DigestedLSN: s.wal.DigestedLSN(),
			})
			return
		}
		if op == insertOp {
			err = h.InsertBatch(vs)
		} else {
			err = h.DeleteBatch(vs)
		}
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		s.noteMutation()
		e.bumpSiteWM(s.watermark())
		e.bumpQueryEpoch()
		s.metrics.ingestBatch.Observe(float64(len(vs)))
		writeJSON(w, http.StatusOK, wire.UpdateResponse{Applied: len(vs), Total: h.Total()})
	}
}

// queryFloat parses a required float query parameter.
func queryFloat(r *http.Request, key string) (float64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", key)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("query parameter %q: not a finite number: %q", key, raw)
	}
	return v, nil
}

// maxQueryStats bounds the number of statistics one batch query may
// request, so a single request cannot ask for unbounded work.
const maxQueryStats = 10000

// evaluate answers a batch query from one pinned view of the named
// histogram. Every read endpoint — the batch POST and the per-statistic
// GET wrappers — funnels through here, so the whole read API shares
// one evaluation path and one consistency story. On failure it writes
// the HTTP error itself and reports false.
func (s *Server) evaluate(w http.ResponseWriter, name string, req wire.QueryRequest) (wire.QueryResponse, bool) {
	e, err := s.reg.get(name)
	if err != nil {
		writeErr(w, statusOf(err), "%v", err)
		return wire.QueryResponse{}, false
	}
	return s.evaluateEntry(w, e, req)
}

// evaluateEntry is evaluate after entry resolution — the form the
// cached query path uses, since it resolves the entry up front to
// reach its cache.
func (s *Server) evaluateEntry(w http.ResponseWriter, e *entry, req wire.QueryRequest) (wire.QueryResponse, bool) {
	if n := len(req.Quantiles) + len(req.CDF) + len(req.PDF) + len(req.Ranges); n > maxQueryStats {
		writeErr(w, http.StatusBadRequest, "query asks for %d statistics, limit %d", n, maxQueryStats)
		return wire.QueryResponse{}, false
	}
	for i, q := range req.Quantiles {
		if math.IsNaN(q) || q <= 0 || q > 1 {
			writeErr(w, http.StatusBadRequest, "quantile %v (index %d) outside (0,1]", q, i)
			return wire.QueryResponse{}, false
		}
	}
	for _, xs := range [][]float64{req.CDF, req.PDF} {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				writeErr(w, http.StatusBadRequest, "non-finite query point at index %d", i)
				return wire.QueryResponse{}, false
			}
		}
	}
	for i, rr := range req.Ranges {
		if math.IsNaN(rr.Lo) || math.IsInf(rr.Lo, 0) || math.IsNaN(rr.Hi) || math.IsInf(rr.Hi, 0) {
			writeErr(w, http.StatusBadRequest, "non-finite range bound at index %d", i)
			return wire.QueryResponse{}, false
		}
	}
	v, err := s.viewOf(e)
	if err != nil {
		// Only reachable when a shard member produced an unmergeable
		// bucket list — impossible for registry-built histograms, but
		// surfaced honestly rather than served as a silent zero.
		writeErr(w, http.StatusInternalServerError, "merged view unavailable: %v", err)
		return wire.QueryResponse{}, false
	}
	spec := dynahist.QuerySpec{
		Quantiles: req.Quantiles,
		CDF:       req.CDF,
		PDF:       req.PDF,
		Buckets:   req.Buckets,
	}
	if len(req.Ranges) > 0 {
		spec.Ranges = make([]dynahist.Range, len(req.Ranges))
		for i, rr := range req.Ranges {
			spec.Ranges[i] = dynahist.Range{Lo: rr.Lo, Hi: rr.Hi}
		}
	}
	sum, err := v.Describe(spec)
	if err != nil {
		// Arguments were validated above; what remains is quantiles of
		// an empty histogram.
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return wire.QueryResponse{}, false
	}
	resp := wire.QueryResponse{
		Total:     sum.Total,
		Quantiles: sum.Quantiles,
		CDF:       sum.CDF,
		PDF:       sum.PDF,
		Ranges:    sum.Ranges,
	}
	if req.Buckets {
		resp.Buckets = toWireBuckets(sum.Buckets)
	}
	return resp, true
}

func toWireBuckets(bs []dynahist.Bucket) []wire.Bucket {
	out := make([]wire.Bucket, len(bs))
	for i, b := range bs {
		out[i] = wire.Bucket{Left: b.Left, Right: b.Right, Counters: b.Counters}
	}
	return out
}

// maxQueryBody caps POST /query request bodies.
const maxQueryBody = 1 << 20

// readBodyLimit is readBody with a size cap enforced inline instead of
// through an http.MaxBytesReader wrapper — the cached query hit path
// runs through here and must not allocate.
// jsonContentType is the shared Content-Type value the allocation-free
// cache-hit path assigns directly into the response header map.
var jsonContentType = []string{"application/json"}

func readBodyLimit(r io.Reader, dst []byte, limit int) ([]byte, error) {
	dst = dst[:0]
	for {
		if len(dst) > limit {
			return dst, fmt.Errorf("body exceeds %d bytes", limit)
		}
		if len(dst) == cap(dst) {
			grown := make([]byte, len(dst), 2*cap(dst)+4096)
			copy(grown, dst)
			dst = grown
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// handleQuery serves POST /v1/h/{name}/query: many statistics, one
// pinned view, one round trip. Responses are cached per (entry, query
// epoch, raw request body): a repeated hot query against an unchanged
// histogram is answered straight from the cache — pooled body read,
// allocation-free map lookup — and every applied mutation bumps the
// entry's epoch, which makes all cached responses unreachable at once.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	e, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeErr(w, statusOf(err), "%v", err)
		return
	}
	buf := ingestPool.Get().(*ingestBuf)
	defer func() {
		if cap(buf.body) <= poolBufLimit && cap(buf.vals)*8 <= poolBufLimit {
			ingestPool.Put(buf)
		}
	}()
	buf.body, err = readBodyLimit(r.Body, buf.body, maxQueryBody)
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		return
	}
	// The epoch is loaded before any view is pinned, and the response
	// is stored under it — so a cached response never claims more
	// freshness than the state it was computed from.
	epoch := e.qEpoch.Load()
	if resp := e.qc.get(epoch, buf.body); resp != nil {
		s.metrics.cacheHits.Inc()
		// Direct map assignment of a shared value: Header().Set would
		// allocate a fresh []string on every hit.
		w.Header()["Content-Type"] = jsonContentType
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(resp)
		return
	}
	s.metrics.cacheMisses.Inc()
	var req wire.QueryRequest
	if err := json.Unmarshal(buf.body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	resp, ok := s.evaluateEntry(w, e, req)
	if !ok {
		return
	}
	data, err := json.Marshal(resp)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	data = append(data, '\n') // byte-identical to the Encoder framing writeJSON uses
	stale, evicted := e.qc.put(epoch, buf.body, data)
	if stale {
		s.metrics.cacheStalePuts.Inc()
	}
	if evicted > 0 {
		s.metrics.cacheEvictions.Add(uint64(evicted))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// The per-statistic GET endpoints are thin wrappers over the same
// batch evaluation, kept for curl-ability and compatibility.

func (s *Server) handleTotal(w http.ResponseWriter, r *http.Request) {
	resp, ok := s.evaluate(w, r.PathValue("name"), wire.QueryRequest{})
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, wire.TotalResponse{Total: resp.Total})
}

func (s *Server) handleCDF(w http.ResponseWriter, r *http.Request) {
	x, err := queryFloat(r, "x")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, ok := s.evaluate(w, r.PathValue("name"), wire.QueryRequest{CDF: []float64{x}})
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, wire.CDFResponse{X: x, CDF: resp.CDF[0]})
}

func (s *Server) handleQuantile(w http.ResponseWriter, r *http.Request) {
	q, err := queryFloat(r, "q")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, ok := s.evaluate(w, r.PathValue("name"), wire.QueryRequest{Quantiles: []float64{q}})
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, wire.QuantileResponse{Q: q, Value: resp.Quantiles[0]})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	lo, err := queryFloat(r, "lo")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	hi, err := queryFloat(r, "hi")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, ok := s.evaluate(w, r.PathValue("name"), wire.QueryRequest{Ranges: []wire.RangeQuery{{Lo: lo, Hi: hi}}})
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, wire.RangeResponse{Lo: lo, Hi: hi, Count: resp.Ranges[0]})
}

func (s *Server) handleBuckets(w http.ResponseWriter, r *http.Request) {
	resp, ok := s.evaluate(w, r.PathValue("name"), wire.QueryRequest{Buckets: true})
	if !ok {
		return
	}
	bs := resp.Buckets
	if bs == nil {
		bs = []wire.Bucket{}
	}
	writeJSON(w, http.StatusOK, wire.BucketsResponse{Buckets: bs})
}
