// Package server implements histserved, the HTTP serving layer over
// this repository's dynamic histograms: a named-histogram registry
// whose entries are Sharded engines (one per histogram, for write
// scaling), JSON and binary-batch ingest endpoints, a batched query
// endpoint answering many statistics from one pinned view plus
// per-statistic GET wrappers (total, cdf, quantile, range, buckets),
// and snapshot-backed recovery
// — a checkpoint loop that periodically serializes every registered
// histogram to a catalog directory so a restarted server keeps
// maintaining where it left off.
package server

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dynahist"
	"dynahist/internal/tuner"
	"dynahist/internal/wire"
)

// Families accepted by the registry — the wire names of the maintained
// kinds (dynahist.ParseKind parses them, Kind.String prints them).
const (
	FamilyDADO = "dado"
	FamilyDVO  = "dvo"
	FamilyDC   = "dc"
	FamilyAC   = "ac"
)

// Registry errors, mapped onto HTTP statuses by the handlers.
var (
	ErrExists   = errors.New("server: histogram already exists")
	ErrNotFound = errors.New("server: no such histogram")
	ErrBadName  = errors.New("server: invalid histogram name")
	ErrFamily   = errors.New("server: unsupported family")
)

// maxNameLen bounds histogram names; names also double as catalog file
// stems, so the charset is filesystem-safe.
const maxNameLen = 128

// ValidName reports whether name is usable: 1–128 bytes of letters,
// digits, '_', '-' and '.', not starting with '.' (which excludes
// hidden files, "." and "..").
func ValidName(name string) bool {
	if len(name) == 0 || len(name) > maxNameLen || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '_' || c == '-' || c == '.':
		default:
			return false
		}
	}
	return true
}

// entry is one registered histogram: its identity and configuration
// plus the sharded engine serving it. The family is not stored beside
// the engine — it lives in the engine's own member kind, which the
// self-describing snapshot envelope carries through the catalog.
type entry struct {
	name     string
	memBytes int
	shards   int
	seed     int64
	// walLSN is the write-ahead-log position the entry's restored
	// snapshot already covers (0 for live-created entries and pre-WAL
	// catalogs). Replay skips this entry's records at or below it, so a
	// crash between the catalog write and the WAL's own position update
	// cannot double-apply the overlap. It is a recovery-time fact only:
	// live digestion always carries strictly larger LSNs.
	walLSN uint64
	// siteWM is the site watermark this entry's in-memory state covers:
	// the server's advertised watermark at the entry's last applied
	// mutation (restored from catalog v4 at startup; 0 for older files).
	// Unlike walLSN it is in the site's logical-ingest sequence, not the
	// local WAL's. It is the unit anti-entropy compares: catalog rows
	// advertise it, adoption is gated on it per entry, and startup seeds
	// the server's watermark from the maximum over restored entries.
	// Stamped strictly *after* the mutation applies, so a concurrent
	// reader pairing siteWM with a snapshot may understate the
	// snapshot's coverage but never overstate it.
	siteWM atomic.Uint64
	h      *dynahist.Sharded

	// qEpoch is the entry's query epoch: bumped strictly *after* every
	// applied mutation (ingest fold, adoption-free non-WAL insert,
	// feedback) on the same sites that stamp siteWM. Readers load it
	// before pinning a view; the query cache keys every stored response
	// on the epoch the reader observed, so a response computed before a
	// write can never be served to a reader who started after it.
	qEpoch atomic.Uint64
	// qc caches marshaled POST /query responses per (epoch, raw body).
	qc queryCache

	// Self-tuning state: the feedback journal (tun) and, for entries
	// restored from a catalog, the raw journal blob awaiting its first
	// use (decoded lazily because the tuner config lives on the
	// server, not the catalog file). Both guarded by tunMu.
	tunMu   sync.Mutex
	tun     *tuner.Tuner
	journal []byte

	// Tuned-view memo: the overlay view served while the entry's query
	// epoch and the tuner's round counter are unchanged. Guarded by
	// tvMu.
	tvMu     sync.Mutex
	tv       *dynahist.View
	tvEpoch  uint64
	tvRounds uint64
}

// bumpSiteWM lifts the entry's covered watermark to at least wm,
// never lowering it — concurrent stamps land in arbitrary order, and
// the advertised coverage must stay monotone regardless.
func (e *entry) bumpSiteWM(wm uint64) {
	for {
		cur := e.siteWM.Load()
		if wm <= cur || e.siteWM.CompareAndSwap(cur, wm) {
			return
		}
	}
}

// kind returns the maintained kind the entry's shards were built from.
func (e *entry) kind() dynahist.Kind { return e.h.MemberKind() }

func (e *entry) info() wire.Info {
	return wire.Info{
		Name:     e.name,
		Family:   e.kind().String(),
		MemBytes: e.memBytes,
		Shards:   e.shards,
		Total:    e.h.Total(),
	}
}

// Registry is a concurrent name → histogram map. All methods are safe
// for concurrent use.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*entry)}
}

// newFamilyHistogram builds the Sharded engine for one registry entry
// through the dynahist.New front door. memBytes is the per-shard
// budget; for AC each shard's reservoir is seeded distinctly so the
// shards do not make identical sampling decisions.
func newFamilyHistogram(kind dynahist.Kind, memBytes, shards int, seed int64) (*dynahist.Sharded, error) {
	if !kind.Maintained() {
		return nil, fmt.Errorf("%w: %q", ErrFamily, kind.String())
	}
	var factory func() (dynahist.Histogram, error)
	if kind == dynahist.KindAC {
		var shardSeq atomic.Int64
		factory = func() (dynahist.Histogram, error) {
			return dynahist.New(kind, dynahist.WithMemory(memBytes), dynahist.WithSeed(seed+shardSeq.Add(1)))
		}
	} else {
		factory = func() (dynahist.Histogram, error) {
			return dynahist.New(kind, dynahist.WithMemory(memBytes))
		}
	}
	return dynahist.NewSharded(factory, dynahist.WithShards(shards))
}

// parseFamily maps a wire family name onto a maintained kind.
func parseFamily(family string) (dynahist.Kind, error) {
	kind, err := dynahist.ParseKind(family)
	if err != nil || !kind.Maintained() {
		return dynahist.KindUnknown, fmt.Errorf("%w: %q", ErrFamily, family)
	}
	return kind, nil
}

// Create registers a new histogram. Zero MemBytes defaults to 1024
// bytes per shard; zero Shards defaults to the engine's GOMAXPROCS
// default.
func (r *Registry) Create(req wire.CreateRequest) (wire.Info, error) {
	if !ValidName(req.Name) {
		return wire.Info{}, fmt.Errorf("%w: %q", ErrBadName, req.Name)
	}
	if req.MemBytes == 0 {
		req.MemBytes = 1024
	}
	if req.MemBytes < 0 || req.Shards < 0 {
		return wire.Info{}, fmt.Errorf("server: negative mem_bytes or shards")
	}
	kind, err := parseFamily(req.Family)
	if err != nil {
		return wire.Info{}, err
	}
	h, err := newFamilyHistogram(kind, req.MemBytes, req.Shards, req.Seed)
	if err != nil {
		return wire.Info{}, err
	}
	e := &entry{
		name:     req.Name,
		memBytes: req.MemBytes,
		shards:   h.NumShards(),
		seed:     req.Seed,
		h:        h,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.checkCollision(e.name); err != nil {
		return wire.Info{}, err
	}
	r.m[e.name] = e
	return e.info(), nil
}

// attach inserts a restored entry, failing on duplicates.
func (r *Registry) attach(e *entry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.checkCollision(e.name); err != nil {
		return err
	}
	r.m[e.name] = e
	return nil
}

// replace installs e, overwriting any existing entry of the same name —
// the anti-entropy adoption path, where a peer's replica of this site's
// histogram supersedes whatever (possibly nothing) is registered
// locally. A case-insensitive collision with a *different* name is
// still rejected, for the same catalog-file-stem reason as Create.
func (r *Registry) replace(e *entry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[e.name]; !ok {
		if err := r.checkCollision(e.name); err != nil {
			return err
		}
	}
	r.m[e.name] = e
	return nil
}

// checkCollision rejects a name that is already registered, exactly or
// up to letter case: names double as catalog file stems, and on a
// case-insensitive filesystem two case-only variants would silently
// share one file and clobber each other's checkpoints. Callers hold
// r.mu.
func (r *Registry) checkCollision(name string) error {
	if _, ok := r.m[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	for existing := range r.m {
		if strings.EqualFold(existing, name) {
			return fmt.Errorf("%w: %q collides with %q up to letter case", ErrExists, name, existing)
		}
	}
	return nil
}

// Get returns the named entry.
func (r *Registry) get(name string) (*entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.m[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e, nil
}

// Histogram returns the sharded engine serving name.
func (r *Registry) Histogram(name string) (*dynahist.Sharded, error) {
	e, err := r.get(name)
	if err != nil {
		return nil, err
	}
	return e.h, nil
}

// Delete removes the named histogram.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(r.m, name)
	return nil
}

// Has reports whether name is registered.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.m[name]
	return ok
}

// List returns every registered histogram's info, sorted by name.
func (r *Registry) List() []wire.Info {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.m))
	for _, e := range r.m {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	infos := make([]wire.Info, len(entries))
	for i, e := range entries {
		infos[i] = e.info()
	}
	return infos
}

// entries returns a stable snapshot of the registered entries, sorted
// by name — the checkpoint loop's iteration order.
func (r *Registry) entries() []*entry {
	r.mu.RLock()
	out := make([]*entry, 0, len(r.m))
	for _, e := range r.m {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Len returns the number of registered histograms.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}
