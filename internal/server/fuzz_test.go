package server

import (
	"testing"

	"dynahist/internal/wire"
)

// fuzzSeedEntry builds a real catalog blob for the seed corpus.
func fuzzSeedEntry(f *testing.F, family string) []byte {
	f.Helper()
	reg := NewRegistry()
	info, err := reg.Create(wire.CreateRequest{Name: "seed-" + family, Family: family, MemBytes: 1024, Shards: 2})
	if err != nil {
		f.Fatal(err)
	}
	h, err := reg.Histogram(info.Name)
	if err != nil {
		f.Fatal(err)
	}
	vs := make([]float64, 500)
	for i := range vs {
		vs[i] = float64(i % 97)
	}
	if err := h.InsertBatch(vs); err != nil {
		f.Fatal(err)
	}
	e, err := reg.get(info.Name)
	if err != nil {
		f.Fatal(err)
	}
	blob, err := EncodeEntry(e, 12345, 678)
	if err != nil {
		f.Fatal(err)
	}
	return blob
}

// FuzzDecodeEntry is the registry-restore fuzzer: corrupted or
// truncated catalog files must be rejected with an error, never a
// panic, and any accepted entry must be a live histogram that keeps
// maintaining — the same contract internal/core's snapshot fuzzers
// enforce one layer down.
func FuzzDecodeEntry(f *testing.F) {
	for _, fam := range []string{FamilyDADO, FamilyDVO, FamilyDC, FamilyAC} {
		blob := fuzzSeedEntry(f, fam)
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
		f.Add(blob[:len(blob)-1])
	}
	f.Add([]byte{})
	f.Add([]byte("HCAT"))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEntry(data)
		if err != nil {
			return
		}
		if !ValidName(e.name) {
			t.Fatalf("accepted entry with invalid name %q", e.name)
		}
		if e.h == nil {
			t.Fatal("accepted entry with nil histogram")
		}
		if err := e.h.Insert(42); err != nil {
			t.Fatalf("restored histogram rejects inserts: %v", err)
		}
		if c := e.h.CDF(1e12); c < 0 || c > 1+1e-9 {
			t.Fatalf("restored CDF out of range: %v", c)
		}
	})
}
