package server

import (
	"encoding/json"
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dynahist/internal/wal"
	"dynahist/internal/wire"
)

// postJSON drives one request through the full mux (instrumented
// routes included).
func postJSON(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// TestMetricsEndpointGated proves the exposition endpoints exist only
// under Config.Metrics while collection itself is always on.
func TestMetricsEndpointGated(t *testing.T) {
	s, err := New(Config{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if rec := postJSON(t, s, "GET", "/metrics", ""); rec.Code != 404 {
		t.Fatalf("GET /metrics without -metrics: status %d, want 404", rec.Code)
	}
	if rec := postJSON(t, s, "GET", "/v1/stats", ""); rec.Code != 404 {
		t.Fatalf("GET /v1/stats without -metrics: status %d, want 404", rec.Code)
	}
	// Collection ran regardless: the 404s themselves aren't attributed
	// to a route, but a real request is.
	postJSON(t, s, "GET", "/healthz", "")
	if got := s.metrics.endpoint("healthz").requests.Value(); got != 1 {
		t.Fatalf("healthz requests = %d, want 1 (collection must be on without the flag)", got)
	}
}

// TestMetricsExposition drives real traffic through an instrumented
// server and checks the scrape covers the acceptance surface: cache
// hit ratio, per-endpoint latency quantiles, status classes, ingest
// distribution.
func TestMetricsExposition(t *testing.T) {
	s, err := New(Config{Logger: log.New(io.Discard, "", 0), Metrics: true, Tuning: TuningConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if rec := postJSON(t, s, "POST", "/v1/h", `{"name":"h","family":"dado","mem_bytes":1024}`); rec.Code != 201 {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	if rec := postJSON(t, s, "POST", "/v1/h/h/insert", `{"values":[1,2,3,4,5,6,7,8]}`); rec.Code != 200 {
		t.Fatalf("insert: %d %s", rec.Code, rec.Body)
	}
	// Same query twice: one miss, one hit.
	for i := 0; i < 2; i++ {
		if rec := postJSON(t, s, "POST", "/v1/h/h/query", `{"quantiles":[0.5]}`); rec.Code != 200 {
			t.Fatalf("query %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	if rec := postJSON(t, s, "POST", "/v1/h/h/feedback", `{"lo":1,"hi":8,"observed":8}`); rec.Code != 200 {
		t.Fatalf("feedback: %d %s", rec.Code, rec.Body)
	}
	// A 404 for the status-class counter.
	postJSON(t, s, "GET", "/v1/h/missing", "")

	rec := postJSON(t, s, "GET", "/metrics", "")
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"# TYPE dynahist_query_cache_hit_ratio gauge",
		"dynahist_query_cache_hit_ratio 0.5",
		"dynahist_query_cache_hits_total 1",
		"dynahist_query_cache_misses_total 1",
		`dynahist_http_requests_total{endpoint="query"} 2`,
		`dynahist_http_request_seconds{endpoint="query",quantile="0.5"}`,
		`dynahist_http_request_seconds{endpoint="query",quantile="0.99"}`,
		`dynahist_http_responses_total{endpoint="info",class="4xx"} 1`,
		"# TYPE dynahist_ingest_batch_values summary",
		"dynahist_ingest_batch_values_count 1",
		"dynahist_ingest_batch_values_sum 8",
		"dynahist_feedback_applied_total 1",
		"dynahist_histograms 1",
		"# TYPE dynahist_antientropy_rounds_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestStatsEndpoint checks the structured-JSON face of the same state,
// including the WAL block with its digest lag.
func TestStatsEndpoint(t *testing.T) {
	s, err := New(Config{
		Logger:  log.New(io.Discard, "", 0),
		Metrics: true,
		WAL:     wal.Options{Dir: t.TempDir(), Sync: wal.SyncAlways},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if rec := postJSON(t, s, "POST", "/v1/h", `{"name":"h","family":"dado","mem_bytes":1024}`); rec.Code != 201 {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	if rec := postJSON(t, s, "POST", "/v1/h/h/insert", `{"values":[1,2,3]}`); rec.Code != 200 {
		t.Fatalf("insert: %d %s", rec.Code, rec.Body)
	}
	// The digester drains asynchronously, and each digested record bumps
	// the query epoch; wait for lag 0 first so the two queries below hit
	// one stable epoch (one miss, one hit) and the lag assertion is
	// deterministic.
	deadline := time.Now().Add(5 * time.Second)
	for s.wal.LastLSN() != s.wal.DigestedLSN() {
		if time.Now().After(deadline) {
			t.Fatal("digester never caught up")
		}
		time.Sleep(time.Millisecond)
	}
	postJSON(t, s, "POST", "/v1/h/h/query", `{"quantiles":[0.5]}`)
	postJSON(t, s, "POST", "/v1/h/h/query", `{"quantiles":[0.5]}`)

	rec := postJSON(t, s, "GET", "/v1/stats", "")
	if rec.Code != 200 {
		t.Fatalf("GET /v1/stats: %d %s", rec.Code, rec.Body)
	}
	var st wire.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if st.Histograms != 1 {
		t.Fatalf("histograms = %d, want 1", st.Histograms)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.HitRatio != 0.5 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss / ratio 0.5", st.Cache)
	}
	if !st.WAL.Enabled || st.WAL.AppendedLSN == 0 || st.WAL.DigestLag != 0 {
		t.Fatalf("wal stats = %+v, want enabled, appends > 0, lag 0", st.WAL)
	}
	if st.WAL.Fsyncs == 0 {
		t.Fatalf("wal stats = %+v, want fsyncs > 0 under SyncAlways", st.WAL)
	}
	if st.Ingest.Batches != 1 || st.Ingest.Values != 3 {
		t.Fatalf("ingest stats = %+v, want 1 batch of 3 values", st.Ingest)
	}
	ep, ok := st.Endpoints["query"]
	if !ok {
		t.Fatalf("stats missing query endpoint: %v", st.Endpoints)
	}
	if ep.Requests != 2 || ep.Status["2xx"] != 2 {
		t.Fatalf("query endpoint stats = %+v, want 2 requests, 2 2xx", ep)
	}
	if ep.LatencyP99 < ep.LatencyP50 || ep.LatencyP50 <= 0 {
		t.Fatalf("query latency quantiles implausible: %+v", ep)
	}

	// The wal/status satellite: DigestLag is reported directly.
	rec = postJSON(t, s, "GET", "/v1/wal/status", "")
	var ws wire.WALStatusResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ws); err != nil {
		t.Fatalf("decoding wal status: %v", err)
	}
	if ws.DigestLag != ws.LagRecords {
		t.Fatalf("wal status DigestLag = %d, LagRecords = %d, want equal", ws.DigestLag, ws.LagRecords)
	}
}
