package server

// Durable ingest: the server's write-ahead-log integration. With
// Config.WAL.Dir set, every mutating request is appended to a
// segmented WAL (internal/wal) and acknowledged the moment the append
// is durable per the sync policy; a single background digester then
// folds the logged batches into the registry's Sharded engines. The
// hot ingest path is therefore a pure append — completely decoupled
// from DADO/DVO split-merge settling — and a crash loses nothing that
// was acked: recovery restores the catalog, then replays the WAL tail
// past the position the last checkpoint recorded.

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"

	"dynahist/internal/wal"
	"dynahist/internal/wire"
)

// digestChanCap bounds the append-to-digest queue; a full queue
// back-pressures ingest acks rather than growing without bound.
const digestChanCap = 4096

// startWAL opens the log, replays the undigested tail into the
// freshly restored registry, and starts the digester. Called from New
// after the catalog restore.
func (s *Server) startWAL() error {
	opts := s.cfg.WAL
	if opts.Logger == nil {
		opts.Logger = s.log
	}
	w, err := wal.Open(opts)
	if err != nil {
		return err
	}
	s.wal = w
	from := w.CheckpointLSN()
	touched := make(map[*entry]bool)
	stats, err := w.Replay(from, func(rec wal.Record) error {
		if e := s.applyRecord(rec); e != nil {
			touched[e] = true
		}
		return nil
	})
	if err != nil {
		// applyRecord never errors; keep the guard honest anyway.
		s.log.Printf("wal: replay: %v", err)
	}
	w.MarkDigested(w.LastLSN())
	// Replayed records postdate each entry's catalog snapshot, so lift
	// the touched entries' covered watermarks to the replayed position
	// (bump, not store: a catalog restored after a prior adoption may
	// already claim more than the local log's sequence).
	for e := range touched {
		e.bumpSiteWM(s.watermark())
	}
	if stats.Records > 0 || stats.CorruptSegments > 0 {
		s.log.Printf("wal: replayed %d record(s) after LSN %d (%d corrupt segment tail(s) skipped)",
			stats.Records, from, stats.CorruptSegments)
	}
	s.digestCh = make(chan wal.Record, digestChanCap)
	s.digestDone = make(chan struct{})
	go s.digestLoop()
	return nil
}

// digestLoop is the single background digester: it folds logged
// records into the histograms in LSN order and advances the digested
// position. digestMu is held across each fold+advance pair, so a
// checkpoint that grabs the mutex sees a frozen, consistent fold state
// and the exact WAL position its snapshots cover.
func (s *Server) digestLoop() {
	defer close(s.digestDone)
	for rec := range s.digestCh {
		s.digestMu.Lock()
		e := s.applyRecord(rec)
		s.wal.MarkDigested(rec.LSN)
		if e != nil {
			// Stamp after the digested position advances, so the entry's
			// covered watermark accounts for the record just folded in.
			e.bumpSiteWM(s.watermark())
			e.bumpQueryEpoch()
		}
		s.digestMu.Unlock()
	}
}

// applyRecord folds one WAL record into the registry, returning the
// entry the record touched (nil for drops, unknown names and garbage)
// so the caller can stamp its covered watermark once the digested
// position reflects the record. It is fail-soft end to end — a record
// for a dropped histogram, a duplicate create, a batch the engine
// rejects are all logged and skipped — because replay must always get
// through the log. Serialised by the caller (the digester loop or
// startup replay), never concurrent with itself.
func (s *Server) applyRecord(rec wal.Record) *entry {
	switch rec.Op {
	case wal.OpCreate:
		var req wire.CreateRequest
		if err := json.Unmarshal(rec.Payload, &req); err != nil {
			s.log.Printf("wal: LSN %d: bad create payload: %v", rec.LSN, err)
			return nil
		}
		if _, err := s.reg.Create(req); err != nil && !errors.Is(err, ErrExists) {
			s.log.Printf("wal: LSN %d: create %q: %v", rec.LSN, req.Name, err)
		}
		if e, err := s.reg.get(req.Name); err == nil {
			return e
		}
	case wal.OpDrop:
		if err := s.reg.Delete(rec.Name); err != nil && !errors.Is(err, ErrNotFound) {
			s.log.Printf("wal: LSN %d: drop %q: %v", rec.LSN, rec.Name, err)
		}
		// Without this, a catalog file checkpointed before the drop
		// would resurrect the histogram on the restart after next.
		if s.cfg.CatalogDir != "" {
			s.catMu.Lock()
			err := os.Remove(catalogPath(s.cfg.CatalogDir, rec.Name))
			s.catMu.Unlock()
			if err != nil && !os.IsNotExist(err) {
				s.log.Printf("wal: LSN %d: removing catalog file for %q: %v", rec.LSN, rec.Name, err)
			}
		}
	case wal.OpInsert, wal.OpDelete:
		e, err := s.reg.get(rec.Name)
		if err != nil {
			s.log.Printf("wal: LSN %d: %v", rec.LSN, err)
			return nil
		}
		if rec.LSN <= e.walLSN {
			// The entry's catalog snapshot already contains this record —
			// the crash landed between the catalog write and the WAL's
			// position update. Replaying it would double-count. The entry
			// still covers the record, so it is stamped all the same.
			return e
		}
		h := e.h
		vs, err := wire.DecodeBatchInto(s.digestVals[:0], rec.Payload)
		if err != nil {
			s.log.Printf("wal: LSN %d: bad batch for %q: %v", rec.LSN, rec.Name, err)
			return nil
		}
		if cap(vs) > cap(s.digestVals) {
			s.digestVals = vs[:0]
		}
		if rec.Op == wal.OpInsert {
			err = h.InsertBatch(vs)
		} else {
			err = h.DeleteBatch(vs)
		}
		if err != nil {
			s.log.Printf("wal: LSN %d: applying batch to %q: %v", rec.LSN, rec.Name, err)
		}
		return e
	default:
		s.log.Printf("wal: LSN %d: unknown op %d skipped", rec.LSN, rec.Op)
	}
	return nil
}

// appendAndEnqueue logs one mutating operation and hands it to the
// digester. It returns the acked LSN. The returned error is nil
// exactly when the record is durable per the sync policy — the
// handler's signal that it may acknowledge.
func (s *Server) appendAndEnqueue(op byte, name string, body []byte) (uint64, error) {
	s.walMu.RLock()
	defer s.walMu.RUnlock()
	if s.walStopped {
		return 0, errors.New("server: shutting down")
	}
	lsn, err := s.wal.Append(op, name, body)
	if err != nil {
		return 0, err
	}
	// The digester owns its copy: body aliases pooled request scratch
	// that is recycled the moment the handler returns.
	owned := make([]byte, len(body))
	copy(owned, body)
	s.digestCh <- wal.Record{LSN: lsn, Op: op, Name: name, Payload: owned}
	return lsn, nil
}

// appendControl logs a create/drop record (already applied to the
// in-memory registry by the handler, so it is not enqueued for
// digestion — it only matters for replay).
func (s *Server) appendControl(op byte, name string, body []byte) (uint64, error) {
	s.walMu.RLock()
	defer s.walMu.RUnlock()
	if s.walStopped {
		return 0, errors.New("server: shutting down")
	}
	return s.wal.Append(op, name, body)
}

// stopWAL drains the digester (so a final checkpoint can cover every
// acked record) and is called from Close before the final checkpoint.
func (s *Server) stopWAL() {
	s.walMu.Lock()
	if s.walStopped {
		s.walMu.Unlock()
		return
	}
	s.walStopped = true
	close(s.digestCh)
	s.walMu.Unlock()
	<-s.digestDone
}

// handleWALStatus serves GET /v1/wal/status: segment shape, the three
// LSN watermarks and the append→digest lag.
func (s *Server) handleWALStatus(w http.ResponseWriter, r *http.Request) {
	resp := wire.WALStatusResponse{Enabled: s.wal != nil}
	if s.wal != nil {
		st := s.wal.Status()
		resp.Dir = st.Dir
		resp.SyncPolicy = st.SyncPolicy
		resp.AppendedLSN = st.AppendedLSN
		resp.DigestedLSN = st.DigestedLSN
		resp.CheckpointLSN = st.CheckpointLSN
		resp.LagRecords = st.AppendedLSN - st.DigestedLSN
		resp.DigestLag = resp.LagRecords
		resp.Segments = st.Segments
		resp.ActiveSegmentBytes = st.ActiveSegmentBytes
		resp.TotalBytes = st.TotalBytes
	}
	writeJSON(w, http.StatusOK, resp)
}
