package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"dynahist"
	"dynahist/internal/binenc"
)

// The catalog is the serving layer's recovery substrate: one file per
// registered histogram, holding the entry's identity and configuration
// plus one self-describing snapshot envelope for the whole sharded
// engine (the root (*Sharded).Snapshot output). The envelope's kind
// tag says which family the shards belong to, so the catalog itself
// carries no family code beside the blob — dynahist.Restore reads the
// tag. Files are written atomically (temp + rename) so a crash
// mid-checkpoint leaves the previous complete catalog intact, and the
// whole registry is rebuilt from the directory at startup.
//
// File layout (all integers little-endian):
//
//	u32  magic 0x48434154 ("HCAT")
//	u16  version (5)
//	u16  name length, then name bytes
//	u32  per-shard mem_bytes
//	u64  seed
//	u64  covered WAL LSN (version ≥ 3)
//	u64  site watermark (version ≥ 4)
//	u32  envelope length, then the envelope bytes
//	u32  feedback journal length, then the journal bytes (version ≥ 5;
//	     zero length when the entry holds no feedback)
//
// The covered WAL LSN is the durability linchpin: it says exactly
// which write-ahead-log records this snapshot already contains, and it
// travels in the same atomically-renamed file as the snapshot itself.
// Recovery filters replay per entry against it, so a crash landing
// between the catalog write and the WAL's own position update can
// never double-apply the overlap.
//
// The site watermark (version 4) is the multi-node analogue: the
// monotonic per-site ingest counter the snapshot covers, in the site's
// logical sequence rather than the local WAL's. Peers compare it during
// anti-entropy, and startup re-seeds the server's advertised watermark
// from it so a restarted node never announces older data as newer.
// The feedback journal (version 5) is the self-tuning subsystem's
// persistence: the entry's journaled query-feedback records
// (internal/tuner's "DHTJ" snapshot format), so tuning survives
// checkpoint/restore. It is opaque at this layer — decoded lazily by
// the server when tuning is enabled, preserved verbatim otherwise.
const (
	catMagic   = 0x48434154 // "HCAT"
	catVersion = 5

	// catVersionV4 added the site watermark but predates the feedback
	// journal; decoded with an empty journal.
	catVersionV4 = 4

	// catVersionV3 added the covered WAL LSN but predates the site
	// watermark; decoded with a zero watermark.
	catVersionV3 = 3

	// catVersionV2 is the pre-WAL envelope layout without the covered
	// LSN; decoded with a zero position (replay everything, correct for
	// catalogs written before the WAL existed).
	catVersionV2 = 2

	// catVersionLegacy is the pre-envelope layout: a family code byte
	// after the version, then name/config, then one raw snapshot blob
	// per shard. Still decoded (dynahist.Restore accepts the raw
	// blobs) so an upgraded server keeps the catalog it already has;
	// the next checkpoint rewrites the file at the current version.
	catVersionLegacy = 1

	// CatalogExt is the catalog file suffix; the stem is the histogram
	// name.
	CatalogExt = ".hist"
)

// legacyFamilyKinds maps a v1 family code onto the member kind its
// shards must restore to.
var legacyFamilyKinds = map[byte]dynahist.Kind{
	1: dynahist.KindDADO,
	2: dynahist.KindDVO,
	3: dynahist.KindDC,
	4: dynahist.KindAC,
}

// ErrCatalog reports a malformed catalog file.
var ErrCatalog = errors.New("server: malformed catalog entry")

// EncodeEntry serializes one registry entry: its configuration, the
// WAL position the snapshot covers (0 when the server runs without a
// WAL), the site watermark it covers (0 when the server has no peer
// role), and the engine's self-describing snapshot envelope.
func EncodeEntry(e *entry, coveredLSN, siteWM uint64) ([]byte, error) {
	blob, err := e.h.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("server: snapshot %q: %w", e.name, err)
	}
	journal := e.journalSnapshot()
	out := make([]byte, 0, 48+len(e.name)+len(blob)+len(journal))
	out = binary.LittleEndian.AppendUint32(out, catMagic)
	out = binary.LittleEndian.AppendUint16(out, catVersion)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(e.name)))
	out = append(out, e.name...)
	out = binary.LittleEndian.AppendUint32(out, uint32(e.memBytes))
	out = binary.LittleEndian.AppendUint64(out, uint64(e.seed))
	out = binary.LittleEndian.AppendUint64(out, coveredLSN)
	out = binary.LittleEndian.AppendUint64(out, siteWM)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(blob)))
	out = append(out, blob...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(journal)))
	out = append(out, journal...)
	return out, nil
}

// DecodeEntry rebuilds a registry entry from an EncodeEntry blob,
// restoring the whole engine through the dynahist.Restore door.
// Garbage of any kind — bad magic, truncated input, implausible sizes,
// corrupt envelopes, an envelope of a non-sharded or non-maintained
// kind — is rejected with ErrCatalog, never a panic.
func DecodeEntry(data []byte) (*entry, error) {
	r := binenc.Reader{Data: data, Err: ErrCatalog}
	magic, err := r.U32()
	if err != nil {
		return nil, err
	}
	if magic != catMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCatalog, magic)
	}
	version, err := r.U16()
	if err != nil {
		return nil, err
	}
	switch version {
	case catVersion, catVersionV4, catVersionV3, catVersionV2:
	case catVersionLegacy:
		return decodeEntryV1(&r)
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCatalog, version)
	}
	nameLen, err := r.U16()
	if err != nil {
		return nil, err
	}
	nameBytes, err := r.Bytes(int(nameLen))
	if err != nil {
		return nil, err
	}
	name := string(nameBytes)
	if !ValidName(name) {
		return nil, fmt.Errorf("%w: invalid name %q", ErrCatalog, name)
	}
	memBytes, err := r.U32()
	if err != nil {
		return nil, err
	}
	if memBytes == 0 || memBytes > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible mem_bytes %d", ErrCatalog, memBytes)
	}
	seed, err := r.U64()
	if err != nil {
		return nil, err
	}
	var walLSN, siteWM uint64
	if version >= catVersionV3 {
		if walLSN, err = r.U64(); err != nil {
			return nil, err
		}
	}
	if version >= catVersionV4 {
		if siteWM, err = r.U64(); err != nil {
			return nil, err
		}
	}
	blobLen, err := r.U32()
	if err != nil {
		return nil, err
	}
	blob, err := r.Bytes(int(blobLen))
	if err != nil {
		return nil, err
	}
	var journal []byte
	if version >= catVersion {
		jLen, err := r.U32()
		if err != nil {
			return nil, err
		}
		if jLen > 0 {
			j, err := r.Bytes(int(jLen))
			if err != nil {
				return nil, err
			}
			journal = append([]byte(nil), j...)
		}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCatalog, r.Remaining())
	}
	restored, err := dynahist.Restore(blob)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCatalog, err)
	}
	h, ok := restored.(*dynahist.Sharded)
	if !ok {
		return nil, fmt.Errorf("%w: envelope holds a %v, not a sharded engine",
			ErrCatalog, dynahist.KindOf(restored))
	}
	if !h.MemberKind().Maintained() {
		return nil, fmt.Errorf("%w: shards hold %v members, not a maintained family",
			ErrCatalog, h.MemberKind())
	}
	e := &entry{
		name:     name,
		memBytes: int(memBytes),
		shards:   h.NumShards(),
		seed:     int64(seed),
		walLSN:   walLSN,
		journal:  journal,
		h:        h,
	}
	e.siteWM.Store(siteWM)
	return e, nil
}

// decodeEntryV1 parses the rest of a version-1 catalog entry (the
// cursor sits just past the version field): family code, name,
// config, then one raw snapshot blob per shard. The per-shard blobs
// go through the same dynahist.Restore door — it accepts the
// pre-envelope raw format — and the family code is cross-checked
// against what the blobs actually restore to.
func decodeEntryV1(r *binenc.Reader) (*entry, error) {
	code, err := r.U8()
	if err != nil {
		return nil, err
	}
	wantKind, ok := legacyFamilyKinds[code]
	if !ok {
		return nil, fmt.Errorf("%w: unknown family code %d", ErrCatalog, code)
	}
	nameLen, err := r.U16()
	if err != nil {
		return nil, err
	}
	nameBytes, err := r.Bytes(int(nameLen))
	if err != nil {
		return nil, err
	}
	name := string(nameBytes)
	if !ValidName(name) {
		return nil, fmt.Errorf("%w: invalid name %q", ErrCatalog, name)
	}
	memBytes, err := r.U32()
	if err != nil {
		return nil, err
	}
	if memBytes == 0 || memBytes > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible mem_bytes %d", ErrCatalog, memBytes)
	}
	seed, err := r.U64()
	if err != nil {
		return nil, err
	}
	nShards, err := r.U32()
	if err != nil {
		return nil, err
	}
	if nShards == 0 || uint64(nShards)*4 > uint64(r.Remaining()) {
		return nil, fmt.Errorf("%w: implausible shard count %d", ErrCatalog, nShards)
	}
	blobs := make([][]byte, nShards)
	for i := range blobs {
		n, err := r.U32()
		if err != nil {
			return nil, err
		}
		blobs[i], err = r.Bytes(int(n))
		if err != nil {
			return nil, err
		}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCatalog, r.Remaining())
	}
	h, err := dynahist.RestoreSharded(blobs, dynahist.Restore)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCatalog, err)
	}
	if got := h.MemberKind(); got != wantKind {
		return nil, fmt.Errorf("%w: family code says %v but shards restore as %v",
			ErrCatalog, wantKind, got)
	}
	return &entry{
		name:     name,
		memBytes: int(memBytes),
		shards:   int(nShards),
		seed:     int64(seed),
		h:        h,
	}, nil
}

// catalogPath returns the catalog file for a histogram name.
func catalogPath(dir, name string) string {
	return filepath.Join(dir, name+CatalogExt)
}

// writeCatalogFile atomically replaces name's catalog file with data
// (temp + fsync + rename). Split from the encode step so the WAL-aware
// checkpoint can encode every snapshot under the digest lock and do
// the file I/O after releasing it.
func writeCatalogFile(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, catalogPath(dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// loadCatalog restores every *.hist entry under dir into reg. It is
// fail-soft: a corrupt or stale file is skipped and reported in the
// returned error list, so one bad entry cannot keep the rest of the
// registry from recovering.
func loadCatalog(dir string, reg *Registry) []error {
	des, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return []error{err}
	}
	var errs []error
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		// A crash between CreateTemp and the rename orphans a temp
		// file; sweep them on startup so periodic crashes cannot
		// accumulate garbage in the catalog.
		if strings.Contains(de.Name(), ".tmp") {
			if err := os.Remove(filepath.Join(dir, de.Name())); err != nil {
				errs = append(errs, fmt.Errorf("removing stale temp %s: %w", de.Name(), err))
			}
			continue
		}
		if !strings.HasSuffix(de.Name(), CatalogExt) {
			continue
		}
		path := filepath.Join(dir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", path, err))
			continue
		}
		e, err := DecodeEntry(data)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", path, err))
			continue
		}
		if want := e.name + CatalogExt; de.Name() != want {
			errs = append(errs, fmt.Errorf("%s: holds entry %q (want file %s)", path, e.name, want))
			continue
		}
		if err := reg.attach(e); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", path, err))
		}
	}
	return errs
}
