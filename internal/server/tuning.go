package server

// Self-tuning and the epoch-keyed query cache. Both ride the same
// per-entry query epoch (entry.qEpoch, bumped strictly after each
// applied mutation):
//
//   - The query cache stores marshaled POST /query responses keyed on
//     the raw request body, under the epoch the reader observed before
//     evaluating. A get only hits when the reader's epoch equals the
//     cache's, so a response computed against pre-write state is never
//     served to a reader who started after the write — the same
//     invalidation discipline as the engine's shard merge cache.
//   - The tuned-view memo caches the feedback-adjusted overlay view
//     per (epoch, tuner round), so hot reads rebuild it only when a
//     write or new feedback lands.
//
// Tuning itself never touches the live maintained histogram: the
// journal replays onto a flat Store built from each epoch's merged
// view (see internal/tuner). Feedback is node-local state — it is not
// WAL-logged or replicated, and persists only through the catalog's
// journal blob (version 5), so a crash between checkpoints loses at
// most the records since the last one; estimates then re-learn.

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sync"

	"dynahist"
	"dynahist/internal/histogram"
	"dynahist/internal/tuner"
	"dynahist/internal/wire"
)

// TuningConfig enables and bounds the feedback loop.
type TuningConfig struct {
	// Enabled turns on POST /v1/h/{name}/feedback and tuned serving.
	// When off, feedback is rejected and restored journals are ignored
	// (but preserved through checkpoints).
	Enabled bool
	// Params bounds the per-record adjustment; zero fields take the
	// tuner package defaults.
	Params tuner.Config
}

// maxCachedQueries bounds the distinct request bodies cached per entry
// per epoch; beyond it new shapes evaluate uncached until the next
// epoch resets the map.
const maxCachedQueries = 256

// queryCache is one entry's epoch-keyed response cache. The map is
// keyed on raw request-body bytes: a lookup via m[string(key)] does
// not allocate, which is what makes the hit path ~0 allocs/op.
type queryCache struct {
	mu    sync.Mutex
	epoch uint64
	m     map[string][]byte
}

// get returns the cached response for key at the reader-observed
// epoch, or nil. A cache holding any other epoch — older or newer —
// never hits: the stored responses were computed against a different
// write history than the reader observed.
func (c *queryCache) get(epoch uint64, key []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != epoch {
		return nil
	}
	return c.m[string(key)]
}

// put stores a response computed at the observed epoch. A put from a
// reader that raced a write (its epoch is behind the cache's) is
// dropped — its response may predate the write the cache's current
// epoch covers. A put ahead of the cache's epoch resets the map. The
// return values feed the cache metrics: stale reports a dropped racy
// put, evicted how many cached responses an epoch advance cleared.
func (c *queryCache) put(epoch uint64, key, resp []byte) (stale bool, evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch < c.epoch {
		return true, 0
	}
	if epoch > c.epoch {
		c.epoch = epoch
		evicted = len(c.m)
		clear(c.m)
	}
	if c.m == nil {
		c.m = make(map[string][]byte)
	}
	if len(c.m) >= maxCachedQueries {
		return false, evicted
	}
	// The key aliases pooled request scratch; the stored copy must own
	// its bytes.
	c.m[string(append([]byte(nil), key...))] = resp
	return false, evicted
}

// bumpQueryEpoch invalidates the entry's cached responses and tuned
// view. Called strictly after a mutation applies, beside the siteWM
// stamp.
func (e *entry) bumpQueryEpoch() { e.qEpoch.Add(1) }

// tunerFor returns the entry's tuner, creating it (or restoring it
// from a catalog journal blob) on first use under cfg's bounds.
func (e *entry) tunerFor(cfg tuner.Config) *tuner.Tuner {
	e.tunMu.Lock()
	defer e.tunMu.Unlock()
	if e.tun == nil {
		if len(e.journal) > 0 {
			if t, err := tuner.FromSnapshot(e.journal, cfg); err == nil {
				e.tun = t
			}
		}
		if e.tun == nil {
			e.tun = tuner.New(cfg)
		}
		e.journal = nil
	}
	return e.tun
}

// journalSnapshot returns the entry's feedback journal for the
// catalog: the live tuner's snapshot, or the still-undecoded restored
// blob (preserved verbatim so a server running with tuning disabled
// does not discard journals across checkpoints), or nil.
func (e *entry) journalSnapshot() []byte {
	e.tunMu.Lock()
	defer e.tunMu.Unlock()
	if e.tun != nil {
		if e.tun.Len() == 0 {
			return nil
		}
		return e.tun.Snapshot()
	}
	return e.journal
}

// adoptTuning transplants old's feedback journal into e — the
// anti-entropy adoption path. The adopted snapshot replaces the
// histogram's data, but the locally observed workload feedback is
// still the best knowledge this node has; it replays onto the adopted
// buckets like onto any new view epoch.
func (e *entry) adoptTuning(old *entry) {
	old.tunMu.Lock()
	tun, journal := old.tun, old.journal
	old.tunMu.Unlock()
	if tun == nil && len(journal) == 0 {
		// Nothing observed locally; keep whatever journal the adopted
		// blob itself carried (e.g. this node's own pre-crash one).
		return
	}
	e.tunMu.Lock()
	e.tun, e.journal = tun, journal
	e.tunMu.Unlock()
}

// viewOf pins the view the read path serves for e: the engine's merged
// view, overlaid with the feedback journal when tuning is enabled and
// the entry has observed any. The overlay is memoised per (query
// epoch, tuner round); failures to build it fail soft to the untuned
// view — estimation quality degrades, serving never breaks.
func (s *Server) viewOf(e *entry) (*dynahist.View, error) {
	epoch := e.qEpoch.Load()
	v, err := e.h.View()
	if err != nil || !s.cfg.Tuning.Enabled {
		return v, err
	}
	t := e.tunerFor(s.cfg.Tuning.Params)
	rounds := t.Rounds()
	if t.Len() == 0 {
		return v, nil
	}
	e.tvMu.Lock()
	if e.tv != nil && e.tvEpoch == epoch && e.tvRounds == rounds {
		tv := e.tv
		e.tvMu.Unlock()
		return tv, nil
	}
	e.tvMu.Unlock()
	tv := buildTunedView(v, t)
	if tv == nil {
		return v, nil
	}
	e.tvMu.Lock()
	e.tv, e.tvEpoch, e.tvRounds = tv, epoch, rounds
	e.tvMu.Unlock()
	return tv, nil
}

// buildTunedView replays the journal onto a flat Store built from the
// merged view's buckets and wraps the result as a servable view. A nil
// return means the overlay could not be built (empty or mixed-K bucket
// lists); the caller serves the untuned view.
func buildTunedView(v *dynahist.View, t *tuner.Tuner) *dynahist.View {
	pb := v.Buckets()
	if len(pb) == 0 {
		return nil
	}
	k := len(pb[0].Counters)
	if k == 0 {
		return nil
	}
	ib := make([]histogram.Bucket, len(pb))
	for i, b := range pb {
		if len(b.Counters) != k {
			return nil
		}
		ib[i] = histogram.Bucket{Left: b.Left, Right: b.Right, Subs: b.Counters}
	}
	st, err := histogram.StoreOfBuckets(ib, k)
	if err != nil {
		return nil
	}
	t.ApplyTo(st)
	tuned := st.Buckets()
	out := make([]dynahist.Bucket, len(tuned))
	for i, b := range tuned {
		out[i] = dynahist.Bucket{Left: b.Left, Right: b.Right, Counters: b.Subs}
	}
	h, err := dynahist.NewStaticFromBuckets(out)
	if err != nil {
		return nil
	}
	tv, err := h.View()
	if err != nil {
		return nil
	}
	return tv
}

// handleFeedback serves POST /v1/h/{name}/feedback: journal one
// feedback record and report the estimate before and after it applied.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.Tuning.Enabled {
		writeErr(w, http.StatusConflict, "self-tuning is disabled (start histserved with -tuning)")
		return
	}
	e, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeErr(w, statusOf(err), "%v", err)
		return
	}
	var req wire.FeedbackRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if math.IsNaN(req.Lo) || math.IsInf(req.Lo, 0) || math.IsNaN(req.Hi) || math.IsInf(req.Hi, 0) {
		writeErr(w, http.StatusBadRequest, "non-finite range bound")
		return
	}
	v, err := s.viewOf(e)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "merged view unavailable: %v", err)
		return
	}
	est := v.EstimateRange(req.Lo, req.Hi)
	t := e.tunerFor(s.cfg.Tuning.Params)
	rec := tuner.Record{Lo: req.Lo, Hi: req.Hi, Estimated: est, Observed: req.Observed}
	if err := t.Observe(rec); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The feedback changes served answers: cached responses and the
	// tuned-view memo are stale.
	e.bumpQueryEpoch()
	resp := wire.FeedbackResponse{
		Name:          e.name,
		Lo:            req.Lo,
		Hi:            req.Hi,
		Observed:      req.Observed,
		Estimated:     est,
		TunedEstimate: est,
		JournalLen:    t.Len(),
		Rounds:        t.Rounds(),
	}
	if tv, err := s.viewOf(e); err == nil {
		resp.TunedEstimate = tv.EstimateRange(req.Lo, req.Hi)
	}
	s.metrics.feedbackApplied.Inc()
	// "Clamped" is a serving-side definition: the tuner's bounded
	// adjustment left the tuned estimate more than max(1, 1% of
	// observed) away from the observed count — the record was journaled
	// but could not be fully absorbed this round.
	if math.Abs(resp.TunedEstimate-req.Observed) > math.Max(1, 0.01*math.Abs(req.Observed)) {
		s.metrics.feedbackClamped.Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}
