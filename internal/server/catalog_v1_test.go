package server

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"dynahist/internal/core"
)

// encodeV1 frames per-shard blobs in the pre-envelope catalog layout.
func encodeV1(familyCode byte, name string, memBytes uint32, seed uint64, blobs [][]byte) []byte {
	out := binary.LittleEndian.AppendUint32(nil, catMagic)
	out = binary.LittleEndian.AppendUint16(out, catVersionLegacy)
	out = append(out, familyCode)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(name)))
	out = append(out, name...)
	out = binary.LittleEndian.AppendUint32(out, memBytes)
	out = binary.LittleEndian.AppendUint64(out, seed)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(blobs)))
	for _, b := range blobs {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
		out = append(out, b...)
	}
	return out
}

// TestDecodeEntryV1 checks that a catalog file written by the
// pre-envelope release — raw "DYNS" shard blobs behind a family code
// — still restores, so an upgraded server keeps its persisted
// statistics.
func TestDecodeEntryV1(t *testing.T) {
	blobs := make([][]byte, 2)
	var want float64
	for i := range blobs {
		h, err := core.NewDADOMemory(1024)
		if err != nil {
			t.Fatal(err)
		}
		for v := range 500 {
			if err := h.Insert(float64(v % 90)); err != nil {
				t.Fatal(err)
			}
			want++
		}
		blob, err := h.Snapshot() // raw core blob, exactly what v1 files hold
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = blob
	}
	data := encodeV1(1, "legacy", 1024, 42, blobs)
	e, err := DecodeEntry(data)
	if err != nil {
		t.Fatalf("DecodeEntry(v1): %v", err)
	}
	if e.name != "legacy" || e.memBytes != 1024 || e.seed != 42 || e.shards != 2 {
		t.Fatalf("v1 entry config = %q/%d/%d/%d", e.name, e.memBytes, e.seed, e.shards)
	}
	if got := e.kind().String(); got != FamilyDADO {
		t.Fatalf("v1 entry kind = %q, want %q", got, FamilyDADO)
	}
	if got := e.h.Total(); math.Abs(got-want) > 0.5 {
		t.Fatalf("v1 entry total = %v, want %v", got, want)
	}
	// A family code that disagrees with what the blobs restore to is
	// corruption, not a kind to trust.
	if _, err := DecodeEntry(encodeV1(3, "liar", 1024, 0, blobs)); !errors.Is(err, ErrCatalog) {
		t.Fatalf("mismatched v1 family code: %v, want ErrCatalog", err)
	}
	if _, err := DecodeEntry(encodeV1(9, "who", 1024, 0, blobs)); !errors.Is(err, ErrCatalog) {
		t.Fatalf("unknown v1 family code: %v, want ErrCatalog", err)
	}
}
