package dynahist

import (
	"dynahist/internal/core"
)

// DeviationKind selects the deviation measure driving the split-merge
// reorganisation of the DVO/DADO family.
type DeviationKind int

const (
	// Variance drives the Dynamic V-Optimal (DVO) histogram.
	Variance DeviationKind = iota
	// AbsDeviation drives the Dynamic Average-Deviation Optimal (DADO)
	// histogram — more robust to frequency outliers and the paper's
	// best performer.
	AbsDeviation
)

// Dynamic is the paper's split-merge histogram family: one maintenance
// machinery whose deviation measure makes it a DADO (absolute
// deviation) or a DVO (variance). Build one with New(KindDADO, …) or
// New(KindDVO, …); KindOf reports which variant an instance is. It is
// not safe for concurrent use; wrap it with NewConcurrent or shard it
// with NewSharded if needed.
type Dynamic struct {
	inner *core.DVO
	// rv is the cached read view; nil after any write.
	rv *View
}

// DADO names the Dynamic family under the paper's headline variant.
// Both variants share the one maintenance machinery, so this is an
// alias, not a distinct type.
type DADO = Dynamic

// DVO names the Dynamic family under its V-optimal variant. It exists
// so the variance-driven histogram is not advertised under the DADO
// name: NewDVO returns a *DVO, which is the same type as *DADO because
// the paper's two variants differ only in their deviation measure
// (inspect it with Kind, or compare KindOf against KindDVO).
type DVO = Dynamic

// NewDADO returns a Dynamic Average-Deviation Optimal histogram with
// the given bucket budget (at least 2) and two sub-buckets per bucket.
//
// Deprecated: use New(KindDADO, WithBuckets(buckets)).
func NewDADO(buckets int) (*DADO, error) {
	h, err := core.NewDADO(buckets)
	if err != nil {
		return nil, err
	}
	return &Dynamic{inner: h}, nil
}

// NewDADOMemory returns a DADO sized for a byte budget using the
// paper's accounting (§4.4): (n+1) borders plus 2n counters of 4 bytes.
//
// Deprecated: use New(KindDADO, WithMemory(memBytes)).
func NewDADOMemory(memBytes int) (*DADO, error) {
	h, err := core.NewDADOMemory(memBytes)
	if err != nil {
		return nil, err
	}
	return &Dynamic{inner: h}, nil
}

// NewDVO returns a Dynamic V-Optimal histogram with the given bucket
// budget.
//
// Deprecated: use New(KindDVO, WithBuckets(buckets)).
func NewDVO(buckets int) (*DVO, error) {
	h, err := core.NewDVO(buckets)
	if err != nil {
		return nil, err
	}
	return &Dynamic{inner: h}, nil
}

// NewDVOMemory returns a DVO sized for a byte budget.
//
// Deprecated: use New(KindDVO, WithMemory(memBytes)).
func NewDVOMemory(memBytes int) (*DVO, error) {
	h, err := core.NewDVOMemory(memBytes)
	if err != nil {
		return nil, err
	}
	return &Dynamic{inner: h}, nil
}

// NewDynamic returns a split-merge histogram with an explicit deviation
// kind and per-bucket sub-bucket count (the paper's §4 ablation knob;
// the paper found 2–3 comparable and finer subdivisions worse).
//
// Deprecated: use New(KindDADO or KindDVO, WithBuckets(buckets),
// WithSubBuckets(subBuckets)).
func NewDynamic(kind DeviationKind, buckets, subBuckets int) (*Dynamic, error) {
	h, err := core.NewDynamic(core.Deviation(kind), buckets, subBuckets)
	if err != nil {
		return nil, err
	}
	return &Dynamic{inner: h}, nil
}

// NewDynamicMemory is NewDynamic with a byte budget instead of a bucket
// count.
//
// Deprecated: use New(KindDADO or KindDVO, WithMemory(memBytes),
// WithSubBuckets(subBuckets)).
func NewDynamicMemory(kind DeviationKind, memBytes, subBuckets int) (*Dynamic, error) {
	h, err := core.NewDynamicMemory(core.Deviation(kind), memBytes, subBuckets)
	if err != nil {
		return nil, err
	}
	return &Dynamic{inner: h}, nil
}

// Insert adds one occurrence of v.
func (h *Dynamic) Insert(v float64) error { h.rv = nil; return h.inner.Insert(v) }

// Delete removes one occurrence of v.
func (h *Dynamic) Delete(v float64) error { h.rv = nil; return h.inner.Delete(v) }

// Total returns the number of points currently summarised.
func (h *Dynamic) Total() float64 { return h.inner.Total() }

// View pins the current state as an immutable snapshot; see Estimator.
func (h *Dynamic) View() (*View, error) {
	if h.rv == nil {
		h.rv = newViewOfStore(h.inner.Store(), h.inner.Total())
	}
	return h.rv, nil
}

// Quantile returns the smallest x with CDF(x) ≥ q, q in (0, 1].
func (h *Dynamic) Quantile(q float64) (float64, error) { return quantileOf(h, q) }

// CDF returns the approximate fraction of points ≤ x.
func (h *Dynamic) CDF(x float64) float64 { return readView(h).CDF(x) }

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (h *Dynamic) EstimateRange(lo, hi float64) float64 { return readView(h).EstimateRange(lo, hi) }

// Buckets returns a copy of the current bucket list, straight off the
// maintained state (no view pin: a bucket copy needs no prefix sums,
// and the shard engine's merge path calls this per rebuild).
func (h *Dynamic) Buckets() []Bucket { return toPublic(h.inner.Buckets()) }

// MaxBuckets returns the bucket budget.
func (h *Dynamic) MaxBuckets() int { return h.inner.MaxBuckets() }

// Kind returns the deviation measure in use.
func (h *Dynamic) Kind() DeviationKind { return DeviationKind(h.inner.Kind()) }

// Reorganisations returns the number of split-merge pairs performed so
// far — a diagnostic for maintenance churn.
func (h *Dynamic) Reorganisations() int { return h.inner.Reorganisations() }

// TotalDeviation returns the quantity the split-merge machinery
// greedily minimises (Eq. 3 or Eq. 5 of the paper, depending on Kind).
func (h *Dynamic) TotalDeviation() float64 { return h.inner.TotalDeviation() }

// DC is a Dynamic Compressed histogram (paper §3): contiguous buckets,
// singular buckets for heavy values, and chi-square-triggered
// repartitioning. It is not safe for concurrent use; wrap it with
// NewConcurrent if needed.
type DC struct {
	inner *core.DC
	// rv is the cached read view; nil after any write.
	rv *View
}

// NewDC returns a DC histogram with the given bucket budget.
//
// Deprecated: use New(KindDC, WithBuckets(buckets)).
func NewDC(buckets int) (*DC, error) {
	h, err := core.NewDC(buckets)
	if err != nil {
		return nil, err
	}
	return &DC{inner: h}, nil
}

// NewDCMemory returns a DC sized for a byte budget using the paper's
// accounting (§3.1): (n+1) borders plus n counters of 4 bytes.
//
// Deprecated: use New(KindDC, WithMemory(memBytes)).
func NewDCMemory(memBytes int) (*DC, error) {
	h, err := core.NewDCMemory(memBytes)
	if err != nil {
		return nil, err
	}
	return &DC{inner: h}, nil
}

// Insert adds one occurrence of v.
func (h *DC) Insert(v float64) error { h.rv = nil; return h.inner.Insert(v) }

// Delete removes one occurrence of v.
func (h *DC) Delete(v float64) error { h.rv = nil; return h.inner.Delete(v) }

// Total returns the number of points currently summarised.
func (h *DC) Total() float64 { return h.inner.Total() }

// View pins the current state as an immutable snapshot; see Estimator.
func (h *DC) View() (*View, error) {
	if h.rv == nil {
		h.rv = newViewOfStore(h.inner.Store(), h.inner.Total())
	}
	return h.rv, nil
}

// Quantile returns the smallest x with CDF(x) ≥ q, q in (0, 1].
func (h *DC) Quantile(q float64) (float64, error) { return quantileOf(h, q) }

// CDF returns the approximate fraction of points ≤ x.
func (h *DC) CDF(x float64) float64 { return readView(h).CDF(x) }

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (h *DC) EstimateRange(lo, hi float64) float64 { return readView(h).EstimateRange(lo, hi) }

// Buckets returns a copy of the current bucket list, straight off the
// maintained state (see Dynamic.Buckets).
func (h *DC) Buckets() []Bucket { return toPublic(h.inner.Buckets()) }

// MaxBuckets returns the bucket budget.
func (h *DC) MaxBuckets() int { return h.inner.MaxBuckets() }

// SetAlphaMin overrides the chi-square significance threshold in [0,1]
// (default 1e-6; 0 freezes the partition, 1 repartitions per insert).
func (h *DC) SetAlphaMin(alpha float64) error { return h.inner.SetAlphaMin(alpha) }

// Repartitions returns how many border relocations have occurred.
func (h *DC) Repartitions() int { return h.inner.Repartitions() }

// SetDamping toggles the futility floor on the repartition trigger
// (default on); see the paper-fidelity notes in EXPERIMENTS.md.
func (h *DC) SetDamping(on bool) { h.inner.SetDamping(on) }

// SingularCount returns the number of singleton buckets currently
// devoted to heavy values.
func (h *DC) SingularCount() int { return h.inner.SingularCount() }
