package dynahist

import (
	"dynahist/internal/core"
)

// DeviationKind selects the deviation measure driving the split-merge
// reorganisation of the DVO/DADO family.
type DeviationKind int

const (
	// Variance drives the Dynamic V-Optimal (DVO) histogram.
	Variance DeviationKind = iota
	// AbsDeviation drives the Dynamic Average-Deviation Optimal (DADO)
	// histogram — more robust to frequency outliers and the paper's
	// best performer.
	AbsDeviation
)

// DADO is a dynamic split-merge histogram: DADO or DVO depending on the
// deviation kind it was created with. It is not safe for concurrent
// use; wrap it with NewConcurrent if needed.
type DADO struct {
	inner *core.DVO
}

// NewDADO returns a Dynamic Average-Deviation Optimal histogram with
// the given bucket budget (at least 2) and two sub-buckets per bucket.
func NewDADO(buckets int) (*DADO, error) {
	h, err := core.NewDADO(buckets)
	if err != nil {
		return nil, err
	}
	return &DADO{inner: h}, nil
}

// NewDADOMemory returns a DADO sized for a byte budget using the
// paper's accounting (§4.4): (n+1) borders plus 2n counters of 4 bytes.
func NewDADOMemory(memBytes int) (*DADO, error) {
	h, err := core.NewDADOMemory(memBytes)
	if err != nil {
		return nil, err
	}
	return &DADO{inner: h}, nil
}

// NewDVO returns a Dynamic V-Optimal histogram with the given bucket
// budget.
func NewDVO(buckets int) (*DADO, error) {
	h, err := core.NewDVO(buckets)
	if err != nil {
		return nil, err
	}
	return &DADO{inner: h}, nil
}

// NewDVOMemory returns a DVO sized for a byte budget.
func NewDVOMemory(memBytes int) (*DADO, error) {
	h, err := core.NewDVOMemory(memBytes)
	if err != nil {
		return nil, err
	}
	return &DADO{inner: h}, nil
}

// NewDynamic returns a split-merge histogram with an explicit deviation
// kind and per-bucket sub-bucket count (the paper's §4 ablation knob;
// the paper found 2–3 comparable and finer subdivisions worse).
func NewDynamic(kind DeviationKind, buckets, subBuckets int) (*DADO, error) {
	h, err := core.NewDynamic(core.Deviation(kind), buckets, subBuckets)
	if err != nil {
		return nil, err
	}
	return &DADO{inner: h}, nil
}

// NewDynamicMemory is NewDynamic with a byte budget instead of a bucket
// count.
func NewDynamicMemory(kind DeviationKind, memBytes, subBuckets int) (*DADO, error) {
	h, err := core.NewDynamicMemory(core.Deviation(kind), memBytes, subBuckets)
	if err != nil {
		return nil, err
	}
	return &DADO{inner: h}, nil
}

// Insert adds one occurrence of v.
func (h *DADO) Insert(v float64) error { return h.inner.Insert(v) }

// Delete removes one occurrence of v.
func (h *DADO) Delete(v float64) error { return h.inner.Delete(v) }

// Total returns the number of points currently summarised.
func (h *DADO) Total() float64 { return h.inner.Total() }

// CDF returns the approximate fraction of points ≤ x.
func (h *DADO) CDF(x float64) float64 { return h.inner.CDF(x) }

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (h *DADO) EstimateRange(lo, hi float64) float64 { return h.inner.EstimateRange(lo, hi) }

// Buckets returns a copy of the current bucket list.
func (h *DADO) Buckets() []Bucket { return toPublic(h.inner.Buckets()) }

// MaxBuckets returns the bucket budget.
func (h *DADO) MaxBuckets() int { return h.inner.MaxBuckets() }

// Kind returns the deviation measure in use.
func (h *DADO) Kind() DeviationKind { return DeviationKind(h.inner.Kind()) }

// Reorganisations returns the number of split-merge pairs performed so
// far — a diagnostic for maintenance churn.
func (h *DADO) Reorganisations() int { return h.inner.Reorganisations() }

// TotalDeviation returns the quantity the split-merge machinery
// greedily minimises (Eq. 3 or Eq. 5 of the paper, depending on Kind).
func (h *DADO) TotalDeviation() float64 { return h.inner.TotalDeviation() }

// DC is a Dynamic Compressed histogram (paper §3): contiguous buckets,
// singular buckets for heavy values, and chi-square-triggered
// repartitioning. It is not safe for concurrent use; wrap it with
// NewConcurrent if needed.
type DC struct {
	inner *core.DC
}

// NewDC returns a DC histogram with the given bucket budget.
func NewDC(buckets int) (*DC, error) {
	h, err := core.NewDC(buckets)
	if err != nil {
		return nil, err
	}
	return &DC{inner: h}, nil
}

// NewDCMemory returns a DC sized for a byte budget using the paper's
// accounting (§3.1): (n+1) borders plus n counters of 4 bytes.
func NewDCMemory(memBytes int) (*DC, error) {
	h, err := core.NewDCMemory(memBytes)
	if err != nil {
		return nil, err
	}
	return &DC{inner: h}, nil
}

// Insert adds one occurrence of v.
func (h *DC) Insert(v float64) error { return h.inner.Insert(v) }

// Delete removes one occurrence of v.
func (h *DC) Delete(v float64) error { return h.inner.Delete(v) }

// Total returns the number of points currently summarised.
func (h *DC) Total() float64 { return h.inner.Total() }

// CDF returns the approximate fraction of points ≤ x.
func (h *DC) CDF(x float64) float64 { return h.inner.CDF(x) }

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (h *DC) EstimateRange(lo, hi float64) float64 { return h.inner.EstimateRange(lo, hi) }

// Buckets returns a copy of the current bucket list.
func (h *DC) Buckets() []Bucket { return toPublic(h.inner.Buckets()) }

// MaxBuckets returns the bucket budget.
func (h *DC) MaxBuckets() int { return h.inner.MaxBuckets() }

// SetAlphaMin overrides the chi-square significance threshold in [0,1]
// (default 1e-6; 0 freezes the partition, 1 repartitions per insert).
func (h *DC) SetAlphaMin(alpha float64) error { return h.inner.SetAlphaMin(alpha) }

// Repartitions returns how many border relocations have occurred.
func (h *DC) Repartitions() int { return h.inner.Repartitions() }

// SetDamping toggles the futility floor on the repartition trigger
// (default on); see the paper-fidelity notes in EXPERIMENTS.md.
func (h *DC) SetDamping(on bool) { h.inner.SetDamping(on) }

// SingularCount returns the number of singleton buckets currently
// devoted to heavy values.
func (h *DC) SingularCount() int { return h.inner.SingularCount() }
