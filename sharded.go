package dynahist

import (
	"fmt"

	"dynahist/internal/histogram"
	"dynahist/internal/shard"
)

// ShardPolicy selects how a Sharded histogram stripes writes across
// its shards.
type ShardPolicy int

const (
	// ShardByValueHash routes every occurrence of a value to the same
	// shard (the default): deletes find the shard their inserts went
	// to, and the per-shard summaries each cover a stable subset of
	// the value domain.
	ShardByValueHash ShardPolicy = iota
	// ShardRoundRobin spreads writes evenly across shards regardless
	// of value — perfectly balanced shard sizes even under heavy value
	// skew, at the cost of delete locality.
	ShardRoundRobin
)

// ShardOption configures NewSharded.
type ShardOption func(*shard.Config)

// WithShards sets the shard count (default: GOMAXPROCS).
func WithShards(n int) ShardOption {
	return func(c *shard.Config) { c.Shards = n }
}

// WithShardPolicy sets the striping policy (default ShardByValueHash).
func WithShardPolicy(p ShardPolicy) ShardOption {
	return func(c *shard.Config) { c.Policy = shard.Policy(p) }
}

// WithMergeBudget caps the merged read view at n buckets; the
// lossless superposition of P shards can hold up to P× a single
// histogram's buckets, and reads that only need budget-quality
// estimates can keep the view small. Zero (the default) keeps the
// full superposition.
func WithMergeBudget(n int) ShardOption {
	return func(c *shard.Config) { c.MergeBudget = n }
}

// Sharded is a histogram maintained as P shared-nothing shards, each
// a private Histogram behind its own lock, merged losslessly on read
// by the paper's §8 superposition. It is safe for concurrent use by
// any number of writers and readers and scales ingest nearly linearly
// with the shard count, where Concurrent serialises every operation
// on one mutex.
//
// Reads (Total, CDF, EstimateRange, Buckets) are served from a cached
// merged snapshot that writes invalidate via an epoch counter; a
// read-heavy phase pays one merge and then runs lock-free. Use
// Concurrent instead when single-writer simplicity matters more than
// throughput, or when reads must reflect each write with zero merge
// cost.
type Sharded struct {
	e *shard.Engine
	// memberKind is the kind of the histograms the shards maintain
	// (KindUnknown when the factory produced a type this package does
	// not know). The registry of the serving layer reports it as the
	// histogram's family.
	memberKind Kind
}

// memberAdapter presents a public Histogram as a shard.Member.
type memberAdapter struct {
	h Histogram
}

func (m memberAdapter) Insert(v float64) error { return m.h.Insert(v) }
func (m memberAdapter) Delete(v float64) error { return m.h.Delete(v) }
func (m memberAdapter) Total() float64         { return m.h.Total() }
func (m memberAdapter) Buckets() []histogram.Bucket {
	return toInternal(m.h.Buckets())
}

// Snapshot forwards to the wrapped histogram's Snapshot when it has
// one (every histogram in this package does), satisfying
// shard.Snapshotter so a Sharded built over them can checkpoint.
func (m memberAdapter) Snapshot() ([]byte, error) {
	s, ok := m.h.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("dynahist: %T does not support snapshots", m.h)
	}
	return s.Snapshot()
}

// InsertBatch forwards a shard's group to the member's native batch
// path when it has one, so the engine's per-shard grouping composes
// with the core histograms' deferred batch maintenance.
func (m memberAdapter) InsertBatch(vs []float64) error { return InsertAll(m.h, vs) }

// DeleteBatch is the delete side of InsertBatch.
func (m memberAdapter) DeleteBatch(vs []float64) error { return DeleteAll(m.h, vs) }

// NewSharded builds a sharded histogram whose shards are created by
// factory — typically one of this package's constructors:
//
//	s, _ := dynahist.NewSharded(func() (dynahist.Histogram, error) {
//	    return dynahist.NewDADOMemory(1024)
//	}, dynahist.WithShards(8))
//
// factory is called once per shard and must return independent
// instances; the engine owns them afterwards. Note the memory budget
// is per shard: P shards of 1 KB summarise with P KB total.
func NewSharded(factory func() (Histogram, error), opts ...ShardOption) (*Sharded, error) {
	var cfg shard.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	var memberKind Kind
	e, err := shard.New(cfg, func() (shard.Member, error) {
		h, err := factory()
		if err != nil {
			return nil, err
		}
		if memberKind == KindUnknown {
			memberKind = KindOf(h)
		}
		return memberAdapter{h: h}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Sharded{e: e, memberKind: memberKind}, nil
}

// MemberKind returns the kind of the histograms the shards maintain —
// KindDADO for a Sharded built over New(KindDADO, …) factories, say —
// or KindUnknown when the members came from outside this package.
// (KindOf on the Sharded itself reports KindSharded.)
func (s *Sharded) MemberKind() Kind { return s.memberKind }

// Insert adds one occurrence of v, contending only on the owning
// shard's lock.
func (s *Sharded) Insert(v float64) error { return s.e.Insert(v) }

// Delete removes one occurrence of v, trying the owning shard first
// and falling back to the others so a globally present point is
// always removable.
func (s *Sharded) Delete(v float64) error { return s.e.Delete(v) }

// InsertBatch adds every value in vs, locking each shard at most once
// — the amortised hot path for high-volume ingest.
func (s *Sharded) InsertBatch(vs []float64) error { return s.e.InsertBatch(vs) }

// DeleteBatch removes every value in vs with batched locking.
func (s *Sharded) DeleteBatch(vs []float64) error { return s.e.DeleteBatch(vs) }

// View pins the current merged state as an immutable snapshot: one
// merged-union materialisation (a cache hit when no write landed since
// the last one), then every statistic lock-free off the pinned state.
// Unlike the fail-soft per-statistic reads it returns the merge error
// directly — a caller never gets a zero answer and then has to poll
// MergeErr to learn the view could not be rebuilt. See Estimator.
func (s *Sharded) View() (*View, error) {
	iv, err := s.e.View()
	if err != nil {
		return nil, err
	}
	return &View{v: iv}, nil
}

// Quantile returns the smallest x with CDF(x) ≥ q, q in (0, 1],
// answered from the merged view.
func (s *Sharded) Quantile(q float64) (float64, error) { return quantileOf(s, q) }

// Total returns the point count of the merged view.
func (s *Sharded) Total() float64 { return s.e.Total() }

// CDF returns the merged view's approximate fraction of points ≤ x.
func (s *Sharded) CDF(x float64) float64 { return s.e.CDF(x) }

// EstimateRange returns the merged view's approximate number of
// points with integer value in [lo, hi] inclusive.
func (s *Sharded) EstimateRange(lo, hi float64) float64 { return s.e.EstimateRange(lo, hi) }

// Buckets returns a copy of the merged view's bucket list.
func (s *Sharded) Buckets() []Bucket { return toPublic(s.e.Buckets()) }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return s.e.NumShards() }

// ShardTotals returns each shard's own point count — a balance
// diagnostic for choosing between the striping policies.
func (s *Sharded) ShardTotals() []float64 { return s.e.ShardTotals() }

// MergeErr returns the error from the most recent failed merged-view
// rebuild, or nil. A merge can only fail when a user-supplied member
// produces an invalid bucket list; while it does, reads keep serving
// the last successfully merged snapshot.
//
// Deprecated: pin the merged state with View, which returns the merge
// error directly instead of requiring this side-channel poll after a
// suspicious answer.
func (s *Sharded) MergeErr() error { return s.e.MergeErr() }
