//go:build !race

package dynahist_test

// raceEnabled reports whether this binary was built with the race
// detector; timing and allocation gates skip themselves under it.
const raceEnabled = false
