module dynahist

go 1.24
