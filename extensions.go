package dynahist

import (
	"dynahist/internal/core"
	"dynahist/internal/multidim"
)

// EDDado is the equi-depth sub-division variant of DADO — the other §4
// design alternative the paper explored. Each bucket keeps an explicit
// interior split at its mass median instead of the geometric midpoint.
type EDDado struct {
	inner *core.EDDado
}

// NewEDDado returns an equi-depth-subdivision dynamic histogram.
func NewEDDado(kind DeviationKind, buckets int) (*EDDado, error) {
	h, err := core.NewEDDado(core.Deviation(kind), buckets)
	if err != nil {
		return nil, err
	}
	return &EDDado{inner: h}, nil
}

// NewEDDadoMemory sizes the histogram for a byte budget (20 bytes per
// bucket: left border, split position, and two counters).
func NewEDDadoMemory(kind DeviationKind, memBytes int) (*EDDado, error) {
	h, err := core.NewEDDadoMemory(core.Deviation(kind), memBytes)
	if err != nil {
		return nil, err
	}
	return &EDDado{inner: h}, nil
}

// Insert adds one occurrence of v.
func (h *EDDado) Insert(v float64) error { return h.inner.Insert(v) }

// Delete removes one occurrence of v.
func (h *EDDado) Delete(v float64) error { return h.inner.Delete(v) }

// Total returns the number of points currently summarised.
func (h *EDDado) Total() float64 { return h.inner.Total() }

// CDF returns the approximate fraction of points ≤ x.
func (h *EDDado) CDF(x float64) float64 { return h.inner.CDF(x) }

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (h *EDDado) EstimateRange(lo, hi float64) float64 { return h.inner.EstimateRange(lo, hi) }

// Buckets returns the state as ordinary buckets (each equi-depth
// bucket's two unequal halves appear as separate buckets).
func (h *EDDado) Buckets() []Bucket { return toPublic(h.inner.Buckets()) }

// View pins the current state as an immutable snapshot; see Estimator.
func (h *EDDado) View() (*View, error) {
	return newViewOwned(h.inner.Buckets(), h.inner.Total())
}

// Quantile returns the smallest x with CDF(x) ≥ q, q in (0, 1].
func (h *EDDado) Quantile(q float64) (float64, error) { return quantileOf(h, q) }

// MaxBuckets returns the bucket budget.
func (h *EDDado) MaxBuckets() int { return h.inner.MaxBuckets() }

// Point2D is one two-dimensional data point.
type Point2D = multidim.Point

// Rect2D is an axis-aligned query/domain rectangle [X0,X1) × [Y0,Y1).
type Rect2D = multidim.Rect

// Histogram2D is a dynamic two-dimensional histogram — the paper's
// stated future-work direction, built here as a binary-space-partition
// of the domain with quadrant counters and DADO-style split-merge
// maintenance. It is not safe for concurrent use.
type Histogram2D struct {
	inner *multidim.Histogram2D
}

// New2D returns a dynamic 2D histogram over the domain rectangle with
// at most maxLeaves rectangular buckets.
func New2D(domain Rect2D, maxLeaves int) (*Histogram2D, error) {
	h, err := multidim.New2D(domain, maxLeaves)
	if err != nil {
		return nil, err
	}
	return &Histogram2D{inner: h}, nil
}

// New2DMemory sizes the histogram for a byte budget (24 bytes per
// leaf).
func New2DMemory(domain Rect2D, memBytes int) (*Histogram2D, error) {
	h, err := multidim.New2DMemory(domain, memBytes)
	if err != nil {
		return nil, err
	}
	return &Histogram2D{inner: h}, nil
}

// Insert adds one occurrence of p (clamped into the domain).
func (h *Histogram2D) Insert(p Point2D) error { return h.inner.Insert(p) }

// Delete removes one occurrence of p.
func (h *Histogram2D) Delete(p Point2D) error { return h.inner.Delete(p) }

// Total returns the number of points currently summarised.
func (h *Histogram2D) Total() float64 { return h.inner.Total() }

// EstimateRect returns the approximate number of points inside the
// query rectangle.
func (h *Histogram2D) EstimateRect(query Rect2D) float64 { return h.inner.EstimateRect(query) }

// Selectivity returns EstimateRect normalised by Total.
func (h *Histogram2D) Selectivity(query Rect2D) float64 { return h.inner.Selectivity(query) }

// NumLeaves returns the current number of rectangular buckets.
func (h *Histogram2D) NumLeaves() int { return h.inner.NumLeaves() }

// MaxLeaves returns the bucket budget.
func (h *Histogram2D) MaxLeaves() int { return h.inner.MaxLeaves() }

// Leaves returns the rectangular buckets and their counts.
func (h *Histogram2D) Leaves() []multidim.LeafInfo { return h.inner.Leaves() }
