package dynahist_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dynahist"
)

// estimatorMatrix builds one Estimator per public kind, fed the same
// value stream (plus a delete pass), for tests quantifying over the
// whole read plane.
func estimatorMatrix(t *testing.T, values []float64) map[string]dynahist.Estimator {
	t.Helper()
	intValues := make([]int, len(values))
	for i, v := range values {
		intValues[i] = int(v)
	}
	build := func(kind dynahist.Kind, opts ...dynahist.Option) dynahist.Estimator {
		h, err := dynahist.New(kind, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return h.(dynahist.Estimator)
	}
	sharded, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	}, dynahist.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	eddado, err := dynahist.NewEDDado(dynahist.AbsDeviation, 32)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]dynahist.Estimator{
		"dado":        build(dynahist.KindDADO, dynahist.WithMemory(1024)),
		"dvo":         build(dynahist.KindDVO, dynahist.WithMemory(1024)),
		"dc":          build(dynahist.KindDC, dynahist.WithMemory(1024)),
		"ac":          build(dynahist.KindAC, dynahist.WithMemory(1024), dynahist.WithSeed(7)),
		"static-ed":   build(dynahist.KindEquiDepth, dynahist.WithValues(intValues), dynahist.WithBuckets(32)),
		"static-ssbm": build(dynahist.KindSSBM, dynahist.WithValues(intValues), dynahist.WithBuckets(32)),
		"concurrent":  dynahist.NewConcurrent(build(dynahist.KindDADO, dynahist.WithMemory(1024))),
		"sharded":     sharded,
		"eddado":      eddado,
	}
	for name, e := range m {
		if name == "static-ed" || name == "static-ssbm" {
			continue // built from the complete data already
		}
		if err := dynahist.InsertAll(e, values); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// A delete pass so the views see post-delete state too.
		if err := dynahist.DeleteAll(e, values[:len(values)/10]); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	return m
}

// TestViewMatchesDirect is the read-plane equivalence property: for
// every public kind, every statistic answered off a pinned View
// matches the type's own direct methods (which since the redesign run
// through the same one implementation, so agreement is essentially
// exact — the loose tolerance only covers AC's live-count vs
// bucket-mass normalisation).
func TestViewMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	values := make([]float64, 30000)
	for i := range values {
		values[i] = float64(rng.Intn(5001))
	}
	for name, e := range estimatorMatrix(t, values) {
		v, err := e.View()
		if err != nil {
			t.Fatalf("%s: View: %v", name, err)
		}
		relTol := func(a, b float64) bool {
			return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
		}
		if !relTol(v.Total(), e.Total()) {
			t.Errorf("%s: view Total %v vs direct %v", name, v.Total(), e.Total())
		}
		vb, eb := v.Buckets(), e.Buckets()
		if len(vb) != len(eb) {
			t.Fatalf("%s: view %d buckets vs direct %d", name, len(vb), len(eb))
		}
		for i := range vb {
			if vb[i].Left != eb[i].Left || vb[i].Right != eb[i].Right || !relTol(vb[i].Count(), eb[i].Count()) {
				t.Fatalf("%s: bucket %d differs: %+v vs %+v", name, i, vb[i], eb[i])
			}
		}
		for probe := 0; probe < 60; probe++ {
			x := -100 + rng.Float64()*5300
			if got, want := v.CDF(x), e.CDF(x); !relTol(got, want) {
				t.Errorf("%s: view CDF(%v) = %v, direct = %v", name, x, got, want)
			}
			lo := rng.Float64() * 5000
			hi := lo + rng.Float64()*1000
			if got, want := v.EstimateRange(lo, hi), e.EstimateRange(lo, hi); !relTol(got, want) {
				t.Errorf("%s: view EstimateRange(%v,%v) = %v, direct = %v", name, lo, hi, got, want)
			}
			q := rng.Float64()
			if q == 0 {
				q = 0.5
			}
			gotQ, err1 := v.Quantile(q)
			wantQ, err2 := e.Quantile(q)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: Quantile(%v) err mismatch: %v vs %v", name, q, err1, err2)
			}
			if err1 == nil && !relTol(gotQ, wantQ) {
				t.Errorf("%s: view Quantile(%v) = %v, direct = %v", name, q, gotQ, wantQ)
			}
			// The deprecated free function (the old copy-per-call path)
			// must still agree with the view up to quantile tolerance.
			legacyQ, err3 := dynahist.Quantile(e, q)
			if err3 == nil && err1 == nil && math.Abs(legacyQ-gotQ) > 1e-6*(1+math.Abs(gotQ)) {
				t.Errorf("%s: legacy Quantile(%v) = %v, view = %v", name, q, legacyQ, gotQ)
			}
		}
		// Describe answers the same batch the singles answered.
		sum, err := v.Describe(dynahist.QuerySpec{
			Quantiles: []float64{0.25, 0.5, 0.75},
			CDF:       []float64{1000, 2500},
			PDF:       []float64{2500},
			Ranges:    []dynahist.Range{{Lo: 1000, Hi: 2000}},
			Buckets:   true,
		})
		if err != nil {
			t.Fatalf("%s: Describe: %v", name, err)
		}
		if sum.Total != v.Total() || len(sum.Quantiles) != 3 || len(sum.CDF) != 2 ||
			len(sum.PDF) != 1 || len(sum.Ranges) != 1 || len(sum.Buckets) != v.NumBuckets() {
			t.Errorf("%s: Describe summary shape wrong: %+v", name, sum)
		}
		if sum.CDF[0] != v.CDF(1000) || sum.Ranges[0] != v.EstimateRange(1000, 2000) {
			t.Errorf("%s: Describe answers diverge from view singles", name)
		}
	}
}

// TestViewPinnedIsImmutable checks the pin semantics: statistics on a
// pinned view must not move when the source histogram is written
// afterwards, for every kind.
func TestViewPinnedIsImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	values := make([]float64, 10000)
	for i := range values {
		values[i] = float64(rng.Intn(2001))
	}
	for name, e := range estimatorMatrix(t, values) {
		v, err := e.View()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total := v.Total()
		cdf := v.CDF(700)
		q90, _ := v.Quantile(0.9)
		for i := 0; i < 500; i++ {
			if err := e.Insert(float64(rng.Intn(2001))); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if v.Total() != total || v.CDF(700) != cdf {
			t.Errorf("%s: pinned view moved under writes", name)
		}
		if got, _ := v.Quantile(0.9); got != q90 {
			t.Errorf("%s: pinned quantile moved under writes", name)
		}
		// A fresh pin sees the writes.
		v2, err := e.View()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v2.Total() <= total {
			t.Errorf("%s: fresh view total %v not above pinned %v", name, v2.Total(), total)
		}
	}
}

// TestPinnedViewStableUnderConcurrentWrites is the -race stability
// test of the redesign: a View pinned off a Sharded (and a Concurrent)
// histogram must stay readable and answer identically while 8 writers
// hammer the source.
func TestPinnedViewStableUnderConcurrentWrites(t *testing.T) {
	sharded, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	}, dynahist.WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	conc := dynahist.NewConcurrent(mustNewKind(t, dynahist.KindDADO, dynahist.WithMemory(1024)))
	for name, e := range map[string]dynahist.Estimator{"sharded": sharded, "concurrent": conc} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(29))
			seedVals := make([]float64, 20000)
			for i := range seedVals {
				seedVals[i] = float64(rng.Intn(5001))
			}
			if err := dynahist.InsertAll(e, seedVals); err != nil {
				t.Fatal(err)
			}
			v, err := e.View()
			if err != nil {
				t.Fatal(err)
			}
			wantTotal := v.Total()
			wantCDF := v.CDF(2500)
			wantQ, err := v.Quantile(0.5)
			if err != nil {
				t.Fatal(err)
			}

			const writers = 8
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
						}
						if err := e.Insert(float64(rng.Intn(5001))); err != nil {
							t.Error(err)
							return
						}
					}
				}(int64(w))
			}
			// Readers hammer the pinned view while the writers run; every
			// answer must equal the pin-time answer.
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					deadline := time.Now().Add(100 * time.Millisecond)
					for time.Now().Before(deadline) {
						if got := v.Total(); got != wantTotal {
							t.Errorf("pinned Total moved: %v != %v", got, wantTotal)
							return
						}
						if got := v.CDF(2500); got != wantCDF {
							t.Errorf("pinned CDF moved: %v != %v", got, wantCDF)
							return
						}
						if got, err := v.Quantile(0.5); err != nil || got != wantQ {
							t.Errorf("pinned Quantile moved: %v, %v != %v", got, err, wantQ)
							return
						}
						_ = v.Buckets()
					}
				}()
			}
			time.Sleep(120 * time.Millisecond)
			close(stop)
			wg.Wait()
		})
	}
}

func mustNewKind(t *testing.T, kind dynahist.Kind, opts ...dynahist.Option) dynahist.Histogram {
	t.Helper()
	h, err := dynahist.New(kind, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestShardedViewReturnsMergeError checks the fail-soft wart fix at
// the public layer: a Sharded whose member produces an unmergeable
// bucket list reports the failure from View() itself instead of
// requiring a MergeErr poll after a stale answer.
func TestShardedViewReturnsMergeError(t *testing.T) {
	s, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return &overlappingHistogram{}, nil
	}, dynahist.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.View(); err == nil {
		t.Fatal("View over an unmergeable member: want error")
	}
	if _, err := s.Quantile(0.5); err == nil {
		t.Fatal("Quantile over an unmergeable member: want error")
	}
}

// overlappingHistogram is a user-supplied Histogram whose bucket list
// violates the non-overlap invariant, to force a merge failure.
type overlappingHistogram struct{ n float64 }

func (o *overlappingHistogram) Insert(v float64) error               { o.n++; return nil }
func (o *overlappingHistogram) Delete(v float64) error               { o.n--; return nil }
func (o *overlappingHistogram) Total() float64                       { return o.n }
func (o *overlappingHistogram) CDF(x float64) float64                { return 0 }
func (o *overlappingHistogram) EstimateRange(lo, hi float64) float64 { return 0 }
func (o *overlappingHistogram) Buckets() []dynahist.Bucket {
	return []dynahist.Bucket{
		{Left: 0, Right: 10, Counters: []float64{o.n}},
		{Left: 5, Right: 15, Counters: []float64{1}},
	}
}

// TestPinnedViewSpeedupGate is the acceptance gate for the read-plane
// redesign: 10 quantiles answered off one pinned Sharded view must be
// at least 3× faster than 10 direct per-call queries through the
// pre-redesign path (dynahist.Quantile, which clones the merged bucket
// list and walks it linearly on every call) at ≥64 merged buckets.
// The real gap is well above 10×; interleaved best-of-3 keeps a noisy
// scheduler from inverting the comparison.
func TestPinnedViewSpeedupGate(t *testing.T) {
	s, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	}, dynahist.WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	vals := make([]float64, 100000)
	for i := range vals {
		vals[i] = float64(rng.Intn(5001))
	}
	if err := s.InsertBatch(vals); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Buckets()); got < 64 {
		t.Fatalf("merged view has %d buckets, want ≥ 64 for the gate", got)
	}
	qs := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.9, 0.99}

	const rounds = 300
	direct := func() time.Duration {
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for _, q := range qs {
				if _, err := dynahist.Quantile(s, q); err != nil {
					t.Fatal(err)
				}
			}
		}
		return time.Since(start)
	}
	pinned := func() time.Duration {
		start := time.Now()
		for r := 0; r < rounds; r++ {
			v, err := s.View()
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range qs {
				if _, err := v.Quantile(q); err != nil {
					t.Fatal(err)
				}
			}
		}
		return time.Since(start)
	}

	directBest := time.Duration(math.MaxInt64)
	pinnedBest := time.Duration(math.MaxInt64)
	for i := 0; i < 3; i++ {
		if d := direct(); d < directBest {
			directBest = d
		}
		if d := pinned(); d < pinnedBest {
			pinnedBest = d
		}
	}
	speedup := float64(directBest) / float64(pinnedBest)
	t.Logf("10 quantiles × %d rounds on %d merged buckets: direct %v, pinned view %v, speedup %.1fx",
		rounds, len(s.Buckets()), directBest, pinnedBest, speedup)
	if speedup < 3 {
		t.Errorf("pinned view %.1fx direct per-call quantiles, want ≥ 3x", speedup)
	}
}
